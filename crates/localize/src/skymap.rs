//! Probability sky maps: the mission product behind the localization.
//!
//! Follow-up observatories consume not just a best-fit direction but a
//! credible region ("90 % containment contour"). This module rasterizes
//! the joint ring likelihood over the visible (upper) hemisphere on an
//! equal-area grid and extracts credible-region areas — the quantity that
//! determines whether a narrow-field telescope can tile the uncertainty.

use crate::likelihood::cone_geometry;
use adapt_math::vec3::UnitVec3;
use adapt_nn::simd::{self, KernelIsa};
use adapt_recon::ComptonRing;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// An equal-area pixelization of the upper hemisphere: belts of constant
/// polar angle, each subdivided so every pixel subtends roughly the same
/// solid angle (a simple Lambert-belt scheme). The belt structure is
/// retained so a direction can be mapped to its containing pixel in O(1)
/// — the lookup the coarse-to-fine rasterizer is built on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HemisphereGrid {
    /// Pixel centers.
    centers: Vec<UnitVec3>,
    /// Solid angle per pixel (steradians) — equal across pixels by
    /// construction, stored for area computations.
    pixel_solid_angle: f64,
    /// Number of equal-`cos θ` belts.
    n_belts: usize,
    /// Start index of each belt's pixels in `centers`, plus a final
    /// `centers.len()` sentinel.
    belt_offsets: Vec<usize>,
}

impl HemisphereGrid {
    /// Build a grid with approximately `target_pixels` pixels.
    pub fn new(target_pixels: usize) -> Self {
        assert!(target_pixels >= 4);
        // belts of equal sin-theta spacing in cos(theta): equal area
        let n_belts = ((target_pixels as f64 / 4.0).sqrt().round() as usize).max(2);
        let mut centers = Vec::new();
        let mut belt_offsets = Vec::with_capacity(n_belts + 1);
        for b in 0..n_belts {
            belt_offsets.push(centers.len());
            // cos(theta) descends from 1 to 0 in equal steps: equal area
            let cos_hi = 1.0 - b as f64 / n_belts as f64;
            let cos_lo = 1.0 - (b + 1) as f64 / n_belts as f64;
            let cos_mid = 0.5 * (cos_hi + cos_lo);
            let theta = cos_mid.clamp(0.0, 1.0).acos();
            // pixels in this belt proportional to its circumference
            let n_pix = ((2.0 * std::f64::consts::PI * theta.sin() * n_belts as f64).ceil()
                as usize)
                .max(1);
            for p in 0..n_pix {
                let phi = std::f64::consts::TAU * (p as f64 + 0.5) / n_pix as f64;
                centers.push(UnitVec3::from_spherical(theta, phi));
            }
        }
        belt_offsets.push(centers.len());
        let pixel_solid_angle = 2.0 * std::f64::consts::PI / centers.len() as f64;
        HemisphereGrid {
            centers,
            pixel_solid_angle,
            n_belts,
            belt_offsets,
        }
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True if the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Pixel centers.
    pub fn centers(&self) -> &[UnitVec3] {
        &self.centers
    }

    /// Solid angle of one pixel (sr).
    pub fn pixel_solid_angle(&self) -> f64 {
        self.pixel_solid_angle
    }

    /// Number of constant-`cos θ` belts.
    pub fn n_belts(&self) -> usize {
        self.n_belts
    }

    /// The pixel index range of belt `b`.
    pub fn belt_pixels(&self, b: usize) -> std::ops::Range<usize> {
        self.belt_offsets[b]..self.belt_offsets[b + 1]
    }

    /// Index of the pixel containing `dir` — O(1): the belt from
    /// `cos θ = z`, the pixel within the belt from the azimuth.
    pub fn pixel_of(&self, dir: UnitVec3) -> usize {
        let v = dir.as_vec();
        let b = (((1.0 - v.z) * self.n_belts as f64) as usize).min(self.n_belts - 1);
        let range = self.belt_pixels(b);
        let n_pix = range.len();
        let mut phi = dir.azimuth();
        if phi < 0.0 {
            phi += std::f64::consts::TAU;
        }
        let p = ((phi / std::f64::consts::TAU * n_pix as f64) as usize).min(n_pix - 1);
        range.start + p
    }

    /// An upper bound on the angular distance (radians) from belt `b`'s
    /// pixel centers to any point inside the pixel: the polar half-extent
    /// plus the azimuthal half-extent traversed at the belt's widest
    /// parallel. This is the enclosing-cone radius the coarse-to-fine
    /// bound propagates.
    pub fn pixel_radius(&self, b: usize) -> f64 {
        let n = self.n_belts as f64;
        let cos_hi = 1.0 - b as f64 / n;
        let cos_lo = 1.0 - (b + 1) as f64 / n;
        let theta_hi = cos_hi.clamp(0.0, 1.0).acos();
        let theta_lo = cos_lo.clamp(0.0, 1.0).acos();
        let theta_c = (0.5 * (cos_hi + cos_lo)).clamp(0.0, 1.0).acos();
        let rho_theta = (theta_c - theta_hi).max(theta_lo - theta_c);
        let n_pix = self.belt_pixels(b).len() as f64;
        rho_theta + theta_lo.sin() * std::f64::consts::PI / n_pix
    }
}

/// A posterior probability map over the upper hemisphere.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkyMap {
    grid: HemisphereGrid,
    /// Normalized pixel probabilities (sum = 1).
    probabilities: Vec<f64>,
}

/// Log-likelihood cut below the running maximum past which pixels cannot
/// contribute visible posterior mass: `e^-34 ≈ 2·10⁻¹⁵` relative weight is
/// below `f64` summation precision, so coarse cells bounded under the cut
/// are inherited instead of refined.
pub const ADAPTIVE_LOGL_CUT: f64 = 34.0;

/// Ratio of fine pixels to coarse cells in the coarse-to-fine pass.
const COARSE_RATIO: usize = 64;

/// Minimum fine-grid size for which the coarse-to-fine pass is worth its
/// bookkeeping; below this `from_rings_adaptive` falls back to the flat
/// sweep.
const MIN_ADAPTIVE_PIXELS: usize = 1024;

/// Per-ring quantities reused for every candidate pixel: the cone
/// geometry plus the cosine-space gap past which the robust likelihood is
/// guaranteed to sit on its floor (`|cos a − cos b| ≤ |a − b|`), letting
/// the rasterizer skip the `acos` entirely for floored rings.
struct RingGeom {
    axis: UnitVec3,
    eta: f64,
    cone_theta: f64,
    sigma: f64,
    /// `floor_z · σ`: if `|axis·c − η| ≥ skip_gap (+ ρ)`, the ring floors
    /// at `c` (over the whole cell of radius ρ).
    skip_gap: f64,
}

impl RingGeom {
    fn precompute(rings: &[ComptonRing], floor_z: f64) -> Vec<RingGeom> {
        rings
            .iter()
            .map(|r| {
                let (cone_theta, sigma) = cone_geometry(r, r.d_eta);
                RingGeom {
                    axis: r.axis,
                    eta: r.eta.clamp(-1.0, 1.0),
                    cone_theta,
                    sigma,
                    skip_gap: floor_z * sigma,
                }
            })
            .collect()
    }

    /// Exact robust log-likelihood contribution at a point given by its
    /// components, skipping the `acos` when the ring provably floors out.
    /// Identical to `robust_log_likelihood` bit for bit: same dot-product
    /// order, same clamp, same floor constant, and the skip-gap early-out
    /// only fires where the `max` would have returned the floor anyway
    /// (`|cos a − cos b| ≤ |a − b|` puts the residual past `floor_z`).
    #[inline]
    fn point_logl(&self, x: f64, y: f64, z: f64, floor_const: f64) -> f64 {
        let a = self.axis.as_vec();
        let dot = (a.x * x + a.y * y + a.z * z).clamp(-1.0, 1.0);
        if (dot - self.eta).abs() >= self.skip_gap {
            return floor_const;
        }
        let zz = (dot.acos() - self.cone_theta) / self.sigma;
        (-0.5 * zz * zz).max(floor_const)
    }

    /// Exact contribution at a cell center plus an upper bound valid over
    /// the whole cell of angular radius `rho` (one shared `acos`).
    #[inline]
    fn cell_logl_and_bound(&self, c: UnitVec3, rho: f64, floor_const: f64) -> (f64, f64) {
        let dot = self.axis.cos_angle_to(c);
        if (dot - self.eta).abs() >= self.skip_gap + rho {
            return (floor_const, floor_const);
        }
        let d_theta = (dot.clamp(-1.0, 1.0).acos() - self.cone_theta).abs();
        let z = d_theta / self.sigma;
        let z_min = (d_theta - rho).max(0.0) / self.sigma;
        (
            (-0.5 * z * z).max(floor_const),
            (-0.5 * z_min * z_min).max(floor_const),
        )
    }
}

/// Pixel rows per parallel sweep chunk: multiples of the 4-wide vector
/// groups, large enough that rayon's spawn cost amortizes.
const SWEEP_CHUNK: usize = 1024;

/// Accumulate every ring's robust log-likelihood over a pixel plane.
/// Pixels are transposed into structure-of-arrays component planes so the
/// inner loop is a contiguous batch of dot products per ring; the ring
/// loop runs *outside* the pixel loop, which preserves each pixel's
/// ring-order summation and keeps the result bit-identical to the
/// per-pixel scalar sweep on every dispatch path.
fn sweep_logls(geoms: &[RingGeom], centers: &[UnitVec3], floor_const: f64) -> Vec<f64> {
    let n = centers.len();
    let mut px = Vec::with_capacity(n);
    let mut py = Vec::with_capacity(n);
    let mut pz = Vec::with_capacity(n);
    for c in centers {
        let v = c.as_vec();
        px.push(v.x);
        py.push(v.y);
        pz.push(v.z);
    }
    let mut logls = vec![0.0f64; n];
    let isa = simd::active_isa();
    let px_base = px.as_ptr() as usize;
    logls
        .par_chunks_mut(SWEEP_CHUNK)
        .zip(px.par_chunks(SWEEP_CHUNK))
        .for_each(|(out, pxc)| {
            // recover this chunk's offset from its position in the plane
            let s = (pxc.as_ptr() as usize - px_base) / std::mem::size_of::<f64>();
            let e = s + out.len();
            sweep_chunk(geoms, pxc, &py[s..e], &pz[s..e], floor_const, isa, out);
        });
    logls
}

/// One chunk of the sweep, dispatched by ISA. The portable path is the
/// specification; the AVX2 path is bit-identical to it (dot products in
/// `Vec3::dot`'s association order with no FMA, scalar `acos` fallback on
/// the exact vector-computed dot). NEON currently inherits the portable
/// path — the skymap is memory-light and the scalar skip-gap test already
/// floors most pixels.
#[allow(unused_variables)]
fn sweep_chunk(
    geoms: &[RingGeom],
    px: &[f64],
    py: &[f64],
    pz: &[f64],
    floor_const: f64,
    isa: KernelIsa,
    out: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if isa == KernelIsa::Avx2 {
        // SAFETY: AVX2 verified by runtime dispatch; px/py/pz/out all
        // have the chunk's length by construction in `sweep_logls`.
        unsafe { sweep_chunk_avx2(geoms, px, py, pz, floor_const, out) };
        return;
    }
    for g in geoms {
        for (i, o) in out.iter_mut().enumerate() {
            *o += g.point_logl(px[i], py[i], pz[i], floor_const);
        }
    }
}

/// AVX2 sweep: per ring, 4-pixel dot products, clamp, and the cosine-space
/// skip-gap test as a vector compare. Fully floored groups (the common
/// case away from the cones — a single `movemask` test) add the floor
/// constant without touching `acos`; mixed groups finish per lane on the
/// exact vector-computed dot, so every arithmetic step matches
/// [`RingGeom::point_logl`] bit for bit.
///
/// # Safety
/// AVX2 required (runtime-dispatched). `px`, `py`, `pz`, `out` must share
/// one length; vector loads stop at `n/4*4` and the tail runs on safe
/// scalar code.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sweep_chunk_avx2(
    geoms: &[RingGeom],
    px: &[f64],
    py: &[f64],
    pz: &[f64],
    floor_const: f64,
    out: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = out.len();
    debug_assert!(px.len() == n && py.len() == n && pz.len() == n);
    let n4 = n / 4 * 4;
    let neg1 = _mm256_set1_pd(-1.0);
    let pos1 = _mm256_set1_pd(1.0);
    let signbit = _mm256_set1_pd(-0.0);
    let floorv = _mm256_set1_pd(floor_const);
    for g in geoms {
        let a = g.axis.as_vec();
        let axv = _mm256_set1_pd(a.x);
        let ayv = _mm256_set1_pd(a.y);
        let azv = _mm256_set1_pd(a.z);
        let etav = _mm256_set1_pd(g.eta);
        let gapv = _mm256_set1_pd(g.skip_gap);
        let mut i = 0;
        while i < n4 {
            // Vec3::dot association order: (x·x + y·y) + z·z, no FMA
            let d = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(axv, _mm256_loadu_pd(px.as_ptr().add(i))),
                    _mm256_mul_pd(ayv, _mm256_loadu_pd(py.as_ptr().add(i))),
                ),
                _mm256_mul_pd(azv, _mm256_loadu_pd(pz.as_ptr().add(i))),
            );
            let d = _mm256_min_pd(_mm256_max_pd(d, neg1), pos1);
            let abs_diff = _mm256_andnot_pd(signbit, _mm256_sub_pd(d, etav));
            let floored = _mm256_cmp_pd::<_CMP_GE_OQ>(abs_diff, gapv);
            let mask = _mm256_movemask_pd(floored);
            if mask == 0b1111 {
                let cur = _mm256_loadu_pd(out.as_ptr().add(i));
                _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_add_pd(cur, floorv));
            } else {
                let mut dots = [0.0f64; 4];
                _mm256_storeu_pd(dots.as_mut_ptr(), d);
                for (lane, &dv) in dots.iter().enumerate() {
                    let add = if (mask >> lane) & 1 == 1 {
                        floor_const
                    } else {
                        let z = (dv.acos() - g.cone_theta) / g.sigma;
                        (-0.5 * z * z).max(floor_const)
                    };
                    *out.get_unchecked_mut(i + lane) += add;
                }
            }
            i += 4;
        }
        for i in n4..n {
            out[i] += g.point_logl(px[i], py[i], pz[i], floor_const);
        }
    }
}

impl SkyMap {
    /// Rasterize the joint robust likelihood of `rings` over `grid` with
    /// a flat sweep of every pixel — the O(pixels × rings) reference
    /// implementation. Log-likelihoods are stabilized by subtracting the
    /// maximum before exponentiation.
    pub fn from_rings(rings: &[ComptonRing], grid: HemisphereGrid, floor_z: f64) -> Self {
        assert!(!rings.is_empty(), "cannot map an empty ring set");
        let floor_const = -0.5 * floor_z * floor_z;
        let geoms = RingGeom::precompute(rings, floor_z);
        let logls = sweep_logls(&geoms, &grid.centers, floor_const);
        Self::from_logls(grid, logls)
    }

    /// Coarse-to-fine rasterization: score a coarse grid first, bound
    /// each coarse cell's joint log-likelihood from above, and refine at
    /// full resolution only the cells whose bound can still reach within
    /// [`ADAPTIVE_LOGL_CUT`] of the running maximum; every other fine
    /// pixel inherits its cell center's value, whose posterior weight is
    /// below `f64` precision by construction. Per ring, a cosine-space
    /// distance test skips the `acos` whenever the robust likelihood is
    /// provably floored.
    ///
    /// Produces the same credible regions as [`SkyMap::from_rings`] (the
    /// property tests pin the areas to within one pixel) at a fraction of
    /// the cost: sub-quadratic in practice because the refined region
    /// shrinks as the ring count — and hence the posterior concentration
    /// — grows.
    pub fn from_rings_adaptive(rings: &[ComptonRing], grid: HemisphereGrid, floor_z: f64) -> Self {
        Self::from_rings_adaptive_recorded(rings, grid, floor_z, adapt_telemetry::noop())
    }

    /// [`SkyMap::from_rings_adaptive`] with the rasterization wall time
    /// reported to `recorder` under [`adapt_telemetry::Stage::SkymapRasterize`].
    pub fn from_rings_adaptive_recorded(
        rings: &[ComptonRing],
        grid: HemisphereGrid,
        floor_z: f64,
        recorder: &dyn adapt_telemetry::Recorder,
    ) -> Self {
        let t0 = std::time::Instant::now();
        let map = Self::from_rings_adaptive_inner(rings, grid, floor_z);
        recorder.duration(adapt_telemetry::Stage::SkymapRasterize, t0.elapsed());
        map
    }

    fn from_rings_adaptive_inner(
        rings: &[ComptonRing],
        grid: HemisphereGrid,
        floor_z: f64,
    ) -> Self {
        assert!(!rings.is_empty(), "cannot map an empty ring set");
        if grid.len() < MIN_ADAPTIVE_PIXELS {
            return Self::from_rings(rings, grid, floor_z);
        }
        let floor_const = -0.5 * floor_z * floor_z;
        let geoms = RingGeom::precompute(rings, floor_z);

        // coarse pass: exact value and joint upper bound per coarse cell
        let coarse = HemisphereGrid::new((grid.len() / COARSE_RATIO).max(64));
        let radii: Vec<f64> = (0..coarse.n_belts())
            .flat_map(|b| {
                let rho = coarse.pixel_radius(b);
                coarse.belt_pixels(b).map(move |_| rho)
            })
            .collect();
        let cell_scores: Vec<(f64, f64)> = (0..coarse.len())
            .into_par_iter()
            .map(|j| {
                let c = coarse.centers[j];
                let rho = radii[j];
                let mut exact = 0.0;
                let mut bound = 0.0;
                for g in &geoms {
                    let (e, u) = g.cell_logl_and_bound(c, rho, floor_const);
                    exact += e;
                    bound += u;
                }
                (exact, bound)
            })
            .collect();
        let coarse_max = cell_scores
            .iter()
            .map(|&(e, _)| e)
            .fold(f64::NEG_INFINITY, f64::max);
        let cut = coarse_max - ADAPTIVE_LOGL_CUT;

        // fine pass: refine only cells whose bound clears the cut. The
        // surviving pixels are compacted into one contiguous plane so the
        // vector sweep runs dense, then scattered back; inherited pixels
        // copy their cell center's exact value.
        let decisions: Vec<(bool, f64)> = grid
            .centers
            .par_iter()
            .map(|&c| {
                let (exact, bound) = cell_scores[coarse.pixel_of(c)];
                (bound >= cut, exact)
            })
            .collect();
        let mut logls = vec![0.0f64; grid.len()];
        let mut refine_idx = Vec::new();
        for (i, &(refine, exact)) in decisions.iter().enumerate() {
            if refine {
                refine_idx.push(i);
            } else {
                logls[i] = exact;
            }
        }
        let refine_centers: Vec<UnitVec3> = refine_idx.iter().map(|&i| grid.centers[i]).collect();
        let refined = sweep_logls(&geoms, &refine_centers, floor_const);
        for (&i, &l) in refine_idx.iter().zip(&refined) {
            logls[i] = l;
        }
        Self::from_logls(grid, logls)
    }

    /// Normalize raw log-likelihoods into a probability map.
    fn from_logls(grid: HemisphereGrid, logls: Vec<f64>) -> Self {
        let max = logls.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut probabilities: Vec<f64> = logls.iter().map(|&l| (l - max).exp()).collect();
        let total: f64 = probabilities.iter().sum();
        for p in probabilities.iter_mut() {
            *p /= total;
        }
        SkyMap {
            grid,
            probabilities,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &HemisphereGrid {
        &self.grid
    }

    /// Pixel probabilities (normalized).
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// The maximum-probability direction.
    pub fn mode(&self) -> UnitVec3 {
        let idx = self
            .probabilities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN probability"))
            .map(|(i, _)| i)
            .expect("non-empty map");
        self.grid.centers[idx]
    }

    /// The solid angle (steradians) of the smallest pixel set containing
    /// `credibility` of the posterior mass — the follow-up tiling area.
    pub fn credible_region_sr(&self, credibility: f64) -> f64 {
        assert!((0.0..=1.0).contains(&credibility));
        let mut sorted: Vec<f64> = self.probabilities.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("NaN probability"));
        let mut mass = 0.0;
        let mut pixels = 0usize;
        for p in sorted {
            mass += p;
            pixels += 1;
            if mass >= credibility {
                break;
            }
        }
        pixels as f64 * self.grid.pixel_solid_angle
    }

    /// Credible region expressed as the radius (degrees) of the disc with
    /// the same solid angle — comparable to containment radii.
    pub fn credible_radius_deg(&self, credibility: f64) -> f64 {
        let sr = self.credible_region_sr(credibility);
        // solid angle of a cone of half-angle a: 2*pi*(1-cos a)
        let cos_a = (1.0 - sr / (2.0 * std::f64::consts::PI)).clamp(-1.0, 1.0);
        cos_a.acos().to_degrees()
    }

    /// Posterior mass within `radius_deg` of a direction — the probability
    /// that the source sits inside a follow-up telescope's field of view.
    pub fn mass_within(&self, center: UnitVec3, radius_deg: f64) -> f64 {
        let cos_r = radius_deg.to_radians().cos();
        self.grid
            .centers
            .iter()
            .zip(&self.probabilities)
            .filter(|(c, _)| c.cos_angle_to(center) >= cos_r)
            .map(|(_, &p)| p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_math::angles::angular_separation;
    use adapt_recon::RingFeatures;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rings_through(source: UnitVec3, n: usize, jitter: f64, seed: u64) -> Vec<ComptonRing> {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let axis = adapt_math::sampling::isotropic_direction(&mut r);
                let eta = (axis.cos_angle_to(source)
                    + jitter * adapt_math::sampling::standard_normal(&mut r))
                .clamp(-0.999, 0.999);
                ComptonRing {
                    axis,
                    eta,
                    d_eta: jitter.max(0.01),
                    features: RingFeatures::zeroed(),
                    truth: None,
                }
            })
            .collect()
    }

    #[test]
    fn grid_covers_hemisphere_equally() {
        let grid = HemisphereGrid::new(1000);
        assert!(grid.len() >= 500, "{} pixels", grid.len());
        // all pixels above the horizon
        assert!(grid.centers().iter().all(|c| c.as_vec().z >= -1e-12));
        // total solid angle = 2 pi
        let total = grid.len() as f64 * grid.pixel_solid_angle();
        assert!((total - 2.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn map_peaks_at_the_source() {
        let source = UnitVec3::from_spherical(0.5, 1.0);
        let rings = rings_through(source, 60, 0.02, 1);
        let map = SkyMap::from_rings(&rings, HemisphereGrid::new(3000), 3.0);
        let mode = map.mode();
        assert!(
            angular_separation(mode, source) < 4.0,
            "mode off by {} deg",
            angular_separation(mode, source)
        );
    }

    #[test]
    fn credible_region_grows_with_credibility_and_uncertainty() {
        let source = UnitVec3::from_spherical(0.3, -0.5);
        let tight = SkyMap::from_rings(
            &rings_through(source, 80, 0.01, 2),
            HemisphereGrid::new(3000),
            3.0,
        );
        let loose = SkyMap::from_rings(
            &rings_through(source, 20, 0.08, 3),
            HemisphereGrid::new(3000),
            3.0,
        );
        assert!(tight.credible_region_sr(0.9) >= tight.credible_region_sr(0.5));
        assert!(
            loose.credible_region_sr(0.9) > tight.credible_region_sr(0.9),
            "loose {} !> tight {}",
            loose.credible_region_sr(0.9),
            tight.credible_region_sr(0.9)
        );
        // radii are consistent transformations
        assert!(tight.credible_radius_deg(0.9) > 0.0);
    }

    #[test]
    fn probabilities_normalized_and_mass_within_covers() {
        let source = UnitVec3::from_spherical(0.4, 2.0);
        let rings = rings_through(source, 50, 0.02, 4);
        let map = SkyMap::from_rings(&rings, HemisphereGrid::new(2000), 3.0);
        let total: f64 = map.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // nearly all mass within 20 degrees of the source for tight rings
        let near = map.mass_within(source, 20.0);
        assert!(near > 0.8, "mass near source {near}");
        // whole hemisphere = 1
        assert!((map.mass_within(UnitVec3::PLUS_Z, 180.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_rings_panics() {
        SkyMap::from_rings(&[], HemisphereGrid::new(100), 3.0);
    }

    #[test]
    fn pixel_of_is_inverse_of_centers() {
        for target in [64, 1000, 5000] {
            let grid = HemisphereGrid::new(target);
            for (i, &c) in grid.centers().iter().enumerate() {
                assert_eq!(grid.pixel_of(c), i, "center {i} of {target}-pixel grid");
            }
        }
    }

    #[test]
    fn pixel_radius_encloses_cell() {
        let grid = HemisphereGrid::new(800);
        let mut r = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..2000 {
            let dir = adapt_math::sampling::isotropic_direction(&mut r);
            let v = dir.as_vec();
            let dir = if v.z < 0.0 {
                adapt_math::vec3::Vec3::from_array([v.x, v.y, -v.z]).normalized()
            } else {
                dir
            };
            let p = grid.pixel_of(dir);
            // recover the belt of pixel p
            let b = (0..grid.n_belts())
                .find(|&b| grid.belt_pixels(b).contains(&p))
                .unwrap();
            let dist = grid.centers()[p].angle_to(dir);
            let rho = grid.pixel_radius(b);
            assert!(
                dist <= rho + 1e-12,
                "point {dist} rad from its pixel center, radius bound {rho}"
            );
        }
    }

    #[test]
    fn adaptive_matches_flat_sweep() {
        let source = UnitVec3::from_spherical(0.45, 1.2);
        let rings = rings_through(source, 70, 0.02, 12);
        let grid = HemisphereGrid::new(12000);
        let flat = SkyMap::from_rings(&rings, grid.clone(), 3.0);
        let adaptive = SkyMap::from_rings_adaptive(&rings, grid, 3.0);
        let tol = flat.grid().pixel_solid_angle();
        for cred in [0.5, 0.9, 0.99] {
            let a = flat.credible_region_sr(cred);
            let b = adaptive.credible_region_sr(cred);
            assert!(
                (a - b).abs() <= tol + 1e-12,
                "{cred}: flat {a} sr vs adaptive {b} sr"
            );
        }
        assert!(angular_separation(flat.mode(), adaptive.mode()) < 1.0);
        // every refined (high-probability) pixel is numerically identical
        let total_diff: f64 = flat
            .probabilities()
            .iter()
            .zip(adaptive.probabilities())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(total_diff < 1e-9, "probability L1 difference {total_diff}");
    }

    #[test]
    fn simd_sweep_bit_identical_to_portable() {
        let source = UnitVec3::from_spherical(0.35, 0.8);
        let rings = rings_through(source, 40, 0.03, 21);
        let grid = HemisphereGrid::new(3000);
        simd::set_force_portable(true);
        let portable = SkyMap::from_rings(&rings, grid.clone(), 3.0);
        let portable_adaptive = SkyMap::from_rings_adaptive(&rings, HemisphereGrid::new(8000), 3.0);
        simd::set_force_portable(false);
        let vector = SkyMap::from_rings(&rings, grid, 3.0);
        let vector_adaptive = SkyMap::from_rings_adaptive(&rings, HemisphereGrid::new(8000), 3.0);
        // restore the env-derived default for the rest of the binary
        let env_forced = std::env::var("ADAPT_FORCE_PORTABLE")
            .map(|v| v == "1")
            .unwrap_or(false);
        simd::set_force_portable(env_forced);
        for (x, y) in portable.probabilities().iter().zip(vector.probabilities()) {
            assert_eq!(x, y, "flat sweep must not depend on ISA");
        }
        for (x, y) in portable_adaptive
            .probabilities()
            .iter()
            .zip(vector_adaptive.probabilities())
        {
            assert_eq!(x, y, "adaptive sweep must not depend on ISA");
        }
    }

    #[test]
    fn adaptive_small_grid_falls_back() {
        let source = UnitVec3::from_spherical(0.2, 0.0);
        let rings = rings_through(source, 30, 0.03, 13);
        let grid = HemisphereGrid::new(500);
        let flat = SkyMap::from_rings(&rings, grid.clone(), 3.0);
        let adaptive = SkyMap::from_rings_adaptive(&rings, grid, 3.0);
        for (x, y) in flat.probabilities().iter().zip(adaptive.probabilities()) {
            assert_eq!(x, y, "fallback must be bit-identical");
        }
    }
}
