//! The ML-in-the-loop localizer (paper Fig. 6).
//!
//! Up to `max_ml_iterations` (paper: five) rounds of:
//!
//! 1. estimate a source direction ŝ (baseline approximation + refinement),
//! 2. take ŝ's polar angle as the networks' thirteenth input,
//! 3. apply the background network with the per-polar-bin threshold and
//!    drop rings classified as background,
//!
//! then one pass of the dEta network replaces every surviving ring's
//! analytic dη with `exp(model output)` (the network regresses ln dη), and
//! a final refinement from the last ŝ produces the answer.
//!
//! Per-stage wall-clock durations are recorded so the timing tables
//! (paper Tables I/II) can be regenerated from any host.

use crate::localizer::{BaselineLocalizer, LocalizerConfig};
use adapt_math::angles::{deg_to_rad, polar_angle_deg};
use adapt_math::vec3::UnitVec3;
use adapt_nn::{
    sigmoid, CompiledMlp, CompiledQuantMlp, FeaturePlanes, InferenceScratch, Matrix, Mlp,
    QuantScratch, QuantizedMlp, ThresholdTable,
};
use adapt_recon::{ComptonRing, N_FEATURES_WITH_POLAR, N_STATIC_FEATURES};
use adapt_telemetry::{
    Counter, DriftMonitor, LoopIterationRecord, LoopSummaryRecord, Recorder, SCORE_BINS,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How the dEta network's prediction is applied to surviving rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DEtaUpdate {
    /// The paper's behaviour: replace every ring's dη with
    /// `exp(network output)`.
    Replace,
    /// Only widen: `max(exp(network output), analytic dη)` — uses the
    /// network to fix the under-estimation failure mode while trusting
    /// sharp analytic values (an ablation variant).
    Inflate,
    /// Keep the analytic dη (isolates the background network's
    /// contribution in ablations).
    Off,
}

/// Configuration of the ML pipeline loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlPipelineConfig {
    /// Baseline localizer used inside the loop.
    pub localizer: LocalizerConfig,
    /// Maximum background-rejection iterations (paper: 5).
    pub max_ml_iterations: usize,
    /// Convergence tolerance on ŝ between iterations (degrees).
    pub convergence_tol_deg: f64,
    /// Whether to feed the polar angle to the networks (Fig. 7 ablation:
    /// when false, models must have been built with 12 inputs).
    pub use_polar_input: bool,
    /// dEta application policy (paper: `Replace`).
    pub d_eta_update: DEtaUpdate,
}

impl Default for MlPipelineConfig {
    fn default() -> Self {
        MlPipelineConfig {
            localizer: LocalizerConfig::default(),
            max_ml_iterations: 5,
            convergence_tol_deg: 0.5,
            use_polar_input: true,
            d_eta_update: DEtaUpdate::Replace,
        }
    }
}

/// Per-stage timing of one localization (paper Tables I/II rows).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Initial approximation + all refinement solves.
    pub approx_refine: Duration,
    /// Background-network inference (all iterations).
    pub background_inference: Duration,
    /// dEta-network inference.
    pub d_eta_inference: Duration,
}

/// The result of an ML-pipeline localization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlLocalizeResult {
    /// Final source direction.
    pub direction: UnitVec3,
    /// ML iterations actually executed.
    pub ml_iterations: usize,
    /// Rings surviving background rejection.
    pub surviving_rings: usize,
    /// Whether the ŝ loop converged before the iteration cap.
    pub converged: bool,
    /// Stage timings.
    pub timings: StageTimings,
}

/// Which arithmetic the background network runs on: the compiled FP32
/// plan, or the compiled fixed-point INT8 plan (the paper's deployment
/// configuration, shared bit-exactly with the FPGA cosim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InferenceBackend {
    /// Full-precision f64 inference via `CompiledMlp`.
    #[default]
    Float,
    /// Fixed-point INT8 inference via `CompiledQuantMlp`.
    Int8,
}

impl InferenceBackend {
    /// Parse a CLI flag value (`float` / `fp32` or `int8` / `quantized`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "float" | "fp32" | "f64" => Some(InferenceBackend::Float),
            "int8" | "quantized" | "quant" => Some(InferenceBackend::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for InferenceBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InferenceBackend::Float => "float",
            InferenceBackend::Int8 => "int8",
        })
    }
}

/// Anything that can score rings as background: the FP32 network, its
/// compiled inference plan, the INT8-quantized network (paper Fig. 11),
/// or a test double.
pub trait BackgroundModel: Sync {
    /// Raw logits, one per input row.
    fn logits(&self, x: &Matrix) -> Vec<f64>;

    /// Raw logits written into a caller-owned buffer through a reusable
    /// scratch arena. The default delegates to [`logits`](Self::logits);
    /// implementations with a compiled plan override this to stay
    /// allocation-free after warm-up.
    fn logits_into(&self, x: &Matrix, scratch: &mut InferenceScratch, out: &mut Vec<f64>) {
        let _ = scratch;
        out.clear();
        out.extend(self.logits(x));
    }

    /// Score selected rows of a feature-major plane set (SoA staging —
    /// see [`FeaturePlanes`]), with an optional shared trailing input
    /// (the loop's polar angle). The default gathers the selected rows
    /// into a row-major matrix and delegates to
    /// [`logits_into`](Self::logits_into); compiled plans override this
    /// to consume the planes directly with one fused staging sweep.
    fn logits_select(
        &self,
        planes: &FeaturePlanes,
        active: &[u32],
        append: Option<f64>,
        scratch: &mut InferenceScratch,
        out: &mut Vec<f64>,
    ) {
        let d = planes.features() + usize::from(append.is_some());
        let mut x = Matrix::zeros(active.len(), d);
        for (r, &i) in active.iter().enumerate() {
            let row = x.row_mut(r);
            for (f, cell) in row.iter_mut().enumerate().take(planes.features()) {
                *cell = planes.plane(f)[i as usize];
            }
            if let Some(v) = append {
                row[d - 1] = v;
            }
        }
        self.logits_into(&x, scratch, out);
    }
}

impl BackgroundModel for Mlp {
    fn logits(&self, x: &Matrix) -> Vec<f64> {
        let out = self.predict(x);
        (0..x.rows()).map(|i| out.get(i, 0)).collect()
    }
}

impl BackgroundModel for CompiledMlp {
    fn logits(&self, x: &Matrix) -> Vec<f64> {
        self.predict(x).as_slice().to_vec()
    }

    fn logits_into(&self, x: &Matrix, scratch: &mut InferenceScratch, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(self.forward_batch(x, scratch));
    }

    fn logits_select(
        &self,
        planes: &FeaturePlanes,
        active: &[u32],
        append: Option<f64>,
        scratch: &mut InferenceScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend_from_slice(self.forward_select(planes, active, append, scratch));
    }
}

impl BackgroundModel for QuantizedMlp {
    fn logits(&self, x: &Matrix) -> Vec<f64> {
        self.forward(x)
    }

    fn logits_into(&self, x: &Matrix, scratch: &mut InferenceScratch, out: &mut Vec<f64>) {
        // run the cached fixed-point plan through the shared scratch
        self.plan().logits_into(x, scratch, out);
    }

    fn logits_select(
        &self,
        planes: &FeaturePlanes,
        active: &[u32],
        append: Option<f64>,
        scratch: &mut InferenceScratch,
        out: &mut Vec<f64>,
    ) {
        self.plan()
            .logits_select(planes, active, append, scratch, out);
    }
}

impl BackgroundModel for CompiledQuantMlp {
    fn logits(&self, x: &Matrix) -> Vec<f64> {
        self.forward_batch(x, &mut QuantScratch::new()).to_vec()
    }

    fn logits_into(&self, x: &Matrix, scratch: &mut InferenceScratch, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(self.forward_batch(x, &mut scratch.quant));
    }

    fn logits_select(
        &self,
        planes: &FeaturePlanes,
        active: &[u32],
        append: Option<f64>,
        scratch: &mut InferenceScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend_from_slice(self.forward_select(planes, active, append, &mut scratch.quant));
    }
}

/// Reusable buffers for one localization stream: the burst's
/// feature-major planes, the active-ring index lists, the network
/// scratch arena, and the logit vector. After the first (largest) burst
/// every later `localize_with` call runs the ML stages without
/// allocating.
#[derive(Debug, Default)]
pub struct InferenceWorkspace {
    inputs: Matrix,
    nn: InferenceScratch,
    logits: Vec<f64>,
    /// Feature-major staging planes, built once per burst (SoA path).
    planes: FeaturePlanes,
    /// Indices into the burst's ring slice still alive in the loop.
    active: Vec<u32>,
    /// Rejection-filter output; swapped with `active` on acceptance so
    /// the pre-filter set survives a rejected iteration.
    next_active: Vec<u32>,
    /// Surviving rings gathered for the geometric refinement (which
    /// needs a contiguous ring slice); reused across iterations.
    survivors: Vec<ComptonRing>,
}

impl InferenceWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The ML localizer. Holds the trained networks by reference so one set of
/// weights can serve many parallel trials; the dEta network (and any
/// background model that exposes a plan) is compiled once per localizer
/// into a BN-folded flat-buffer plan the hot loop runs allocation-free.
pub struct MlLocalizer<'a> {
    background_net: &'a dyn BackgroundModel,
    thresholds: &'a ThresholdTable,
    compiled_d_eta: CompiledMlp,
    config: MlPipelineConfig,
    baseline: BaselineLocalizer,
    recorder: &'a dyn Recorder,
    drift: Option<&'a DriftMonitor>,
}

impl<'a> MlLocalizer<'a> {
    /// Assemble from trained components. Compiles the dEta network's
    /// inference plan up front.
    pub fn new(
        background_net: &'a dyn BackgroundModel,
        thresholds: &'a ThresholdTable,
        d_eta_net: &'a Mlp,
        config: MlPipelineConfig,
    ) -> Self {
        let baseline = BaselineLocalizer::new(config.localizer.clone());
        MlLocalizer {
            background_net,
            thresholds,
            compiled_d_eta: CompiledMlp::compile(d_eta_net),
            config,
            baseline,
            recorder: adapt_telemetry::noop(),
            drift: None,
        }
    }

    /// Attach a telemetry recorder: each background-rejection iteration
    /// emits a [`LoopIterationRecord`] (rings kept/dropped, background
    /// score histogram, angular step) and each localization a
    /// [`LoopSummaryRecord`] (iterations, convergence, mean |dη
    /// correction|).
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach a drift monitor: the staged feature rows of each
    /// localization's first background pass are accumulated into the
    /// monitor's histograms, so the observed inference-time distribution
    /// can be PSI-scored against the training reference. Rows whose
    /// width does not match the monitor's reference (the 12-wide
    /// no-polar ablation against a 13-wide reference) are ignored.
    pub fn with_drift_monitor(mut self, monitor: &'a DriftMonitor) -> Self {
        self.drift = Some(monitor);
        self
    }

    /// Stage the model input matrix for a set of rings at a given polar
    /// estimate into a reusable buffer (no allocation once the buffer has
    /// reached the burst's ring count).
    fn stage_inputs(&self, rings: &[ComptonRing], polar_deg: f64, x: &mut Matrix) {
        if self.config.use_polar_input {
            x.resize(rings.len(), N_FEATURES_WITH_POLAR);
            for (i, r) in rings.iter().enumerate() {
                x.row_mut(i)
                    .copy_from_slice(&r.features.to_model_input(polar_deg));
            }
        } else {
            x.resize(rings.len(), 12);
            for (i, r) in rings.iter().enumerate() {
                x.row_mut(i).copy_from_slice(&r.features.to_static_array());
            }
        }
    }

    /// Background probabilities for each ring at the given polar estimate.
    pub fn background_probabilities(&self, rings: &[ComptonRing], polar_deg: f64) -> Vec<f64> {
        let mut ws = InferenceWorkspace::new();
        self.background_logits(rings, polar_deg, &mut ws);
        ws.logits.iter().map(|&l| sigmoid(l)).collect()
    }

    /// Score rings with the background net into `ws.logits`.
    fn background_logits(
        &self,
        rings: &[ComptonRing],
        polar_deg: f64,
        ws: &mut InferenceWorkspace,
    ) {
        if rings.is_empty() {
            ws.logits.clear();
            return;
        }
        self.stage_inputs(rings, polar_deg, &mut ws.inputs);
        // split-borrow: logits buffer out, inputs + scratch in
        let InferenceWorkspace {
            inputs, nn, logits, ..
        } = ws;
        self.background_net.logits_into(inputs, nn, logits);
    }

    /// Run the full Fig.-6 loop with a private, throwaway workspace.
    /// Batch drivers that localize many bursts should hold one
    /// [`InferenceWorkspace`] and call
    /// [`localize_with`](Self::localize_with) instead.
    pub fn localize<R: Rng + ?Sized>(
        &self,
        rings: &[ComptonRing],
        rng: &mut R,
    ) -> Option<MlLocalizeResult> {
        let mut ws = InferenceWorkspace::new();
        self.localize_with(rings, rng, &mut ws)
    }

    /// Run the full Fig.-6 loop through a caller-owned workspace: all
    /// network stages (every background-rejection iteration plus the dEta
    /// pass) run batched over the surviving rings and allocation-free
    /// once the workspace is warm.
    pub fn localize_with<R: Rng + ?Sized>(
        &self,
        rings: &[ComptonRing],
        rng: &mut R,
        ws: &mut InferenceWorkspace,
    ) -> Option<MlLocalizeResult> {
        let mut timings = StageTimings::default();

        // initial estimate without ML
        let t0 = Instant::now();
        let initial = self.baseline.localize(rings, rng)?;
        timings.approx_refine += t0.elapsed();
        let mut s_hat = initial.direction;

        // build the burst's feature planes once — one contiguous sweep
        // per feature; rejection iterations shrink an index list instead
        // of re-gathering (and re-cloning) ring structs every pass
        ws.planes.resize(N_STATIC_FEATURES, rings.len());
        for (i, r) in rings.iter().enumerate() {
            let arr = r.features.to_static_array();
            for (f, &v) in arr.iter().enumerate() {
                ws.planes.plane_mut(f)[i] = v;
            }
        }
        ws.active.clear();
        ws.active.extend(0..rings.len() as u32);

        let mut iterations = 0usize;
        let mut converged = false;
        let telemetry_live = self.recorder.is_enabled();
        for _ in 0..self.config.max_ml_iterations {
            iterations += 1;
            let polar = polar_angle_deg(s_hat);
            let append = self.config.use_polar_input.then_some(polar);

            let t_bkg = Instant::now();
            {
                // split-borrow: logits buffer out, planes + scratch in
                let InferenceWorkspace {
                    planes,
                    active,
                    nn,
                    logits,
                    ..
                } = ws;
                self.background_net
                    .logits_select(planes, active, append, nn, logits);
            }
            ws.next_active.clear();
            for (&i, &l) in ws.active.iter().zip(&ws.logits) {
                if !self.thresholds.is_background(sigmoid(l), polar) {
                    ws.next_active.push(i);
                }
            }
            timings.background_inference += t_bkg.elapsed();

            // feed the feature rows of the FIRST pass into the drift
            // monitor — later iterations re-score a survivor subset of
            // the same burst and would double-count it. Outside the
            // timed section: monitoring cost must not skew Tables I/II.
            if iterations == 1 {
                if let Some(monitor) = self.drift {
                    if self.config.use_polar_input {
                        for r in rings {
                            monitor.observe_row(&r.features.to_model_input(polar));
                        }
                    } else {
                        for r in rings {
                            monitor.observe_row(&r.features.to_static_array());
                        }
                    }
                }
            }

            // background-score histogram, only when a recorder is live
            // (the extra sigmoids are pure telemetry cost)
            let score_hist = if telemetry_live {
                let mut hist = [0u32; SCORE_BINS];
                for &l in ws.logits.iter() {
                    let bin = ((sigmoid(l) * SCORE_BINS as f64) as usize).min(SCORE_BINS - 1);
                    hist[bin] += 1;
                }
                hist
            } else {
                [0u32; SCORE_BINS]
            };
            let rings_in = ws.active.len();
            let emit_iteration = |rings_kept: usize, step_deg: f64| {
                if telemetry_live {
                    self.recorder.loop_iteration(&LoopIterationRecord {
                        iteration: iterations,
                        rings_in,
                        rings_kept,
                        score_hist,
                        step_deg,
                    });
                }
            };

            // if rejection nuked the set, keep the previous estimate
            if ws.next_active.len() < self.config.localizer.refine.min_rings {
                emit_iteration(ws.next_active.len(), f64::NAN);
                break;
            }

            // the geometric solver needs a contiguous ring slice: gather
            // survivors into the reused buffer
            ws.survivors.clear();
            ws.survivors
                .extend(ws.next_active.iter().map(|&i| rings[i as usize].clone()));
            let t_loc = Instant::now();
            let refined = self.baseline.refine_from(&ws.survivors, s_hat);
            timings.approx_refine += t_loc.elapsed();
            let Some(refined) = refined else {
                emit_iteration(ws.next_active.len(), f64::NAN);
                std::mem::swap(&mut ws.active, &mut ws.next_active);
                break;
            };
            let delta_deg = adapt_math::angles::rad_to_deg(s_hat.angle_to(refined.direction));
            emit_iteration(ws.next_active.len(), delta_deg);
            std::mem::swap(&mut ws.active, &mut ws.next_active);
            s_hat = refined.direction;
            if delta_deg < self.config.convergence_tol_deg {
                converged = true;
                break;
            }
        }
        self.recorder
            .add(Counter::LoopIterations, iterations as u64);

        // dEta update on survivors, then the final refinement
        let polar = polar_angle_deg(s_hat);
        let append = self.config.use_polar_input.then_some(polar);
        let t_deta = Instant::now();
        let mut abs_d_eta_correction = 0.0f64;
        ws.survivors.clear();
        match self.config.d_eta_update {
            DEtaUpdate::Off => {
                let InferenceWorkspace {
                    active, survivors, ..
                } = ws;
                survivors.extend(active.iter().map(|&i| rings[i as usize].clone()));
            }
            policy => {
                let InferenceWorkspace {
                    planes,
                    active,
                    nn,
                    survivors,
                    ..
                } = ws;
                let ln_d_eta = self
                    .compiled_d_eta
                    .forward_select(planes, active, append, nn);
                for (&i, &ln_d) in active.iter().zip(ln_d_eta) {
                    let r = &rings[i as usize];
                    let predicted = ln_d.exp().clamp(1e-4, 2.0);
                    let d = match policy {
                        DEtaUpdate::Replace => predicted,
                        DEtaUpdate::Inflate => predicted.max(r.d_eta),
                        DEtaUpdate::Off => unreachable!(),
                    };
                    abs_d_eta_correction += (d - r.d_eta).abs();
                    survivors.push(r.with_d_eta(d));
                }
            }
        }
        timings.d_eta_inference += t_deta.elapsed();
        let updated = &ws.survivors;
        if telemetry_live {
            self.recorder.loop_summary(&LoopSummaryRecord {
                iterations,
                converged,
                surviving_rings: updated.len(),
                mean_abs_d_eta_correction: if updated.is_empty() {
                    0.0
                } else {
                    abs_d_eta_correction / updated.len() as f64
                },
            });
        }

        let t_final = Instant::now();
        let final_refine = self.baseline.refine_from(updated, s_hat);
        timings.approx_refine += t_final.elapsed();
        let direction = final_refine.map(|r| r.direction).unwrap_or(s_hat);

        // the Earth blocks below-horizon sources; clamp to the horizon by
        // reflecting any tiny southward drift introduced by refinement
        let direction = if direction.as_vec().z < 0.0 {
            UnitVec3::from_spherical(deg_to_rad(90.0), direction.azimuth())
        } else {
            direction
        };

        Some(MlLocalizeResult {
            direction,
            ml_iterations: iterations,
            surviving_rings: updated.len(),
            converged,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_math::angles::angular_separation;
    use adapt_nn::mlp::BlockOrder;
    use adapt_recon::RingFeatures;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(71)
    }

    /// A "perfect oracle" background net: we build rings whose first
    /// feature encodes the label, then train a tiny net to read it. This
    /// tests the loop mechanics independently of real training quality.
    fn oracle_parts() -> (Mlp, ThresholdTable, Mlp) {
        let mut r = rng();
        let mut bkg = Mlp::new(13, &[8], BlockOrder::BatchNormFirst, &mut r);
        // train on synthetic data: label = 1 if feature0 > 0.5
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..600 {
            let label = (i % 2) as f64;
            let mut row = vec![0.0; 13];
            row[0] = if label > 0.5 { 1.0 } else { 0.0 };
            row[12] = (i % 90) as f64;
            xs.extend_from_slice(&row);
            ys.push(label);
        }
        let ds = adapt_nn::Dataset::new(Matrix::from_vec(600, 13, xs), ys);
        let cfg = adapt_nn::TrainConfig {
            max_epochs: 60,
            batch_size: 64,
            learning_rate: 0.1,
            momentum: 0.9,
            patience: 60,
            objective: adapt_nn::Objective::BinaryCrossEntropy,
        };
        adapt_nn::train(&mut bkg, &ds, &ds, &cfg, &mut r);
        // dEta net: constant output (ln 0.02)
        let mut deta = Mlp::new(13, &[4], BlockOrder::BatchNormFirst, &mut r);
        let target = (0.02f64).ln();
        let ys2: Vec<f64> = vec![target; 600];
        let mut xs2 = Vec::new();
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..600 {
            for _ in 0..13 {
                xs2.push(adapt_math::sampling::standard_normal(&mut r2));
            }
        }
        let ds2 = adapt_nn::Dataset::new(Matrix::from_vec(600, 13, xs2), ys2);
        let cfg2 = adapt_nn::TrainConfig {
            max_epochs: 80,
            batch_size: 64,
            learning_rate: 0.05,
            momentum: 0.9,
            patience: 80,
            objective: adapt_nn::Objective::MeanSquaredError,
        };
        adapt_nn::train(&mut deta, &ds2, &ds2, &cfg2, &mut r);
        (bkg, ThresholdTable::uniform(0.5), deta)
    }

    fn make_rings(source: UnitVec3, n_src: usize, n_bkg: usize, seed: u64) -> Vec<ComptonRing> {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        let mut rings = Vec::new();
        for i in 0..(n_src + n_bkg) {
            let is_bkg = i >= n_src;
            let (axis, eta) = if is_bkg {
                let axis = adapt_math::sampling::isotropic_direction(&mut r);
                (axis, r.gen_range(-0.9..0.9))
            } else {
                let axis = adapt_math::sampling::isotropic_direction(&mut r);
                let eta = (axis.cos_angle_to(source)
                    + 0.02 * adapt_math::sampling::standard_normal(&mut r))
                .clamp(-0.999, 0.999);
                (axis, eta)
            };
            let mut features = RingFeatures::zeroed();
            features.total_energy = if is_bkg { 1.0 } else { 0.0 }; // oracle bit
            rings.push(ComptonRing {
                axis,
                eta,
                // the analytic estimate is deliberately over-confident for
                // the source rings and the loop must still work
                d_eta: 0.02,
                features,
                truth: None,
            });
        }
        rings
    }

    #[test]
    fn loop_rejects_background_and_localizes() {
        let (bkg, thresholds, deta) = oracle_parts();
        let source = UnitVec3::from_spherical(0.5, 0.7);
        let rings = make_rings(source, 60, 150, 8);
        let ml = MlLocalizer::new(&bkg, &thresholds, &deta, MlPipelineConfig::default());
        let res = ml.localize(&rings, &mut rng()).unwrap();
        let err = angular_separation(res.direction, source);
        assert!(err < 3.0, "error {err} deg");
        // the oracle should discard nearly all 150 background rings
        assert!(
            res.surviving_rings < 90,
            "survivors {}",
            res.surviving_rings
        );
        assert!(res.ml_iterations >= 1 && res.ml_iterations <= 5);
        assert!(res.timings.background_inference > Duration::ZERO);
        assert!(res.timings.d_eta_inference > Duration::ZERO);
    }

    #[test]
    fn ml_beats_baseline_under_heavy_background() {
        let (bkg, thresholds, deta) = oracle_parts();
        let source = UnitVec3::from_spherical(0.3, -0.4);
        let mut err_ml = 0.0;
        let mut err_base = 0.0;
        for seed in 0..5 {
            let rings = make_rings(source, 40, 160, 100 + seed);
            let ml = MlLocalizer::new(&bkg, &thresholds, &deta, MlPipelineConfig::default());
            let res = ml.localize(&rings, &mut rng()).unwrap();
            err_ml += angular_separation(res.direction, source);
            let base = BaselineLocalizer::default()
                .localize(&rings, &mut rng())
                .unwrap();
            err_base += angular_separation(base.direction, source);
        }
        assert!(
            err_ml <= err_base + 1.0,
            "ml {err_ml} vs baseline {err_base} (cumulative over 5 trials)"
        );
    }

    #[test]
    fn returns_none_without_solvable_geometry() {
        let (bkg, thresholds, deta) = oracle_parts();
        let ml = MlLocalizer::new(&bkg, &thresholds, &deta, MlPipelineConfig::default());
        assert!(ml.localize(&[], &mut rng()).is_none());
    }

    #[test]
    fn compiled_background_matches_mlp_path() {
        let (bkg, thresholds, deta) = oracle_parts();
        let source = UnitVec3::from_spherical(0.5, 0.7);
        let rings = make_rings(source, 60, 150, 8);
        let cfg = MlPipelineConfig::default();
        let via_mlp = MlLocalizer::new(&bkg, &thresholds, &deta, cfg.clone());
        let compiled = adapt_nn::CompiledMlp::compile(&bkg);
        let via_plan = MlLocalizer::new(&compiled, &thresholds, &deta, cfg);
        let a = via_mlp.localize(&rings, &mut rng()).unwrap();
        let b = via_plan.localize(&rings, &mut rng()).unwrap();
        // the compiled plan re-associates floating-point sums, which the
        // iterative refinement amplifies to ~1e-6 degrees; classification
        // decisions must still agree exactly on this well-separated problem
        assert_eq!(a.surviving_rings, b.surviving_rings);
        assert_eq!(a.ml_iterations, b.ml_iterations);
        assert!(
            angular_separation(a.direction, b.direction) < 1e-3,
            "directions diverged by {} deg",
            angular_separation(a.direction, b.direction)
        );
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        let (bkg, thresholds, deta) = oracle_parts();
        let compiled = adapt_nn::CompiledMlp::compile(&bkg);
        let ml = MlLocalizer::new(&compiled, &thresholds, &deta, MlPipelineConfig::default());
        let source = UnitVec3::from_spherical(0.4, -1.1);
        let mut ws = InferenceWorkspace::new();
        // localize bursts of shrinking then growing size through ONE
        // workspace; each must match a fresh-workspace run bit for bit
        for (n_src, n_bkg, seed) in [(80, 120, 21), (20, 30, 22), (60, 90, 23)] {
            let rings = make_rings(source, n_src, n_bkg, seed);
            let reused = ml.localize_with(&rings, &mut rng(), &mut ws).unwrap();
            let fresh = ml.localize(&rings, &mut rng()).unwrap();
            assert_eq!(reused.surviving_rings, fresh.surviving_rings);
            assert!(angular_separation(reused.direction, fresh.direction) < 1e-12);
        }
    }

    #[test]
    fn drift_monitor_counts_first_pass_rows_once() {
        let (bkg, thresholds, deta) = oracle_parts();
        let source = UnitVec3::from_spherical(0.5, 0.7);
        let rings = make_rings(source, 60, 150, 8);
        // reference fitted on the same feature layout the localizer stages
        let rows: Vec<f64> = rings
            .iter()
            .flat_map(|r| r.features.to_model_input(45.0))
            .collect();
        let reference = adapt_telemetry::DriftReference::fit(&rows, rings.len(), 13);
        let monitor = DriftMonitor::new(reference);
        // zero tolerance: the loop never declares convergence, so every
        // allowed rejection iteration re-scores the survivors
        let cfg = MlPipelineConfig {
            convergence_tol_deg: 0.0,
            ..Default::default()
        };
        let ml = MlLocalizer::new(&bkg, &thresholds, &deta, cfg).with_drift_monitor(&monitor);
        let res = ml.localize(&rings, &mut rng()).unwrap();
        // several rejection iterations ran, but only the first pass (which
        // stages every incoming ring) feeds the monitor
        assert!(res.ml_iterations >= 2, "iterations {}", res.ml_iterations);
        assert_eq!(monitor.rows_observed(), rings.len() as u64);
        let report = monitor.report();
        assert_eq!(report.per_feature_psi.len(), 13);
        assert!(report.per_feature_psi.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn backend_flag_parses() {
        assert_eq!(
            InferenceBackend::parse("float"),
            Some(InferenceBackend::Float)
        );
        assert_eq!(
            InferenceBackend::parse("int8"),
            Some(InferenceBackend::Int8)
        );
        assert_eq!(
            InferenceBackend::parse("quantized"),
            Some(InferenceBackend::Int8)
        );
        assert_eq!(InferenceBackend::parse("int7"), None);
        assert_eq!(InferenceBackend::default(), InferenceBackend::Float);
    }

    #[test]
    fn quantized_backend_matches_its_compiled_plan_bit_for_bit() {
        let (_, thresholds, deta) = oracle_parts();
        let mut r = rng();
        // quantization requires the LinearFirst block order; train a
        // small oracle in that order on the same feature-0 rule
        let mut bkg = Mlp::new(13, &[8], BlockOrder::LinearFirst, &mut r);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..600 {
            let label = (i % 2) as f64;
            let mut row = vec![0.0; 13];
            row[0] = label;
            row[12] = (i % 90) as f64;
            xs.extend_from_slice(&row);
            ys.push(label);
        }
        let ds = adapt_nn::Dataset::new(Matrix::from_vec(600, 13, xs), ys);
        let cfg_train = adapt_nn::TrainConfig {
            max_epochs: 60,
            batch_size: 64,
            learning_rate: 0.1,
            momentum: 0.9,
            patience: 60,
            objective: adapt_nn::Objective::BinaryCrossEntropy,
        };
        adapt_nn::train(&mut bkg, &ds, &ds, &cfg_train, &mut r);
        let calib = Matrix::he_uniform(256, 13, &mut r);
        let quant = QuantizedMlp::quantize(&bkg, &calib);
        let plan = adapt_nn::CompiledQuantMlp::compile(&quant);
        let source = UnitVec3::from_spherical(0.5, 0.7);
        let rings = make_rings(source, 60, 150, 8);
        let cfg = MlPipelineConfig::default();
        // QuantizedMlp (OnceLock-cached plan) and an explicitly compiled
        // plan are the same integer arithmetic — localizations agree
        // exactly, including every classification decision
        let via_net = MlLocalizer::new(&quant, &thresholds, &deta, cfg.clone());
        let via_plan = MlLocalizer::new(&plan, &thresholds, &deta, cfg);
        let a = via_net.localize(&rings, &mut rng()).unwrap();
        let b = via_plan.localize(&rings, &mut rng()).unwrap();
        assert_eq!(a.surviving_rings, b.surviving_rings);
        assert_eq!(a.ml_iterations, b.ml_iterations);
        // compare raw components: angular_separation of even identical
        // unit vectors reports ~1e-6 deg (acos near 1.0)
        assert_eq!(a.direction.as_vec().x, b.direction.as_vec().x);
        assert_eq!(a.direction.as_vec().y, b.direction.as_vec().y);
        assert_eq!(a.direction.as_vec().z, b.direction.as_vec().z);
    }

    #[test]
    fn never_returns_below_horizon() {
        let (bkg, thresholds, deta) = oracle_parts();
        // rings consistent with a source *at* the horizon
        let source = UnitVec3::from_spherical(deg_to_rad(88.0), 0.3);
        let rings = make_rings(source, 50, 50, 9);
        let ml = MlLocalizer::new(&bkg, &thresholds, &deta, MlPipelineConfig::default());
        if let Some(res) = ml.localize(&rings, &mut rng()) {
            assert!(res.direction.as_vec().z >= -1e-12);
        }
    }
}
