//! `adapt-localize`: GRB source localization from Compton rings.
//!
//! Implements the paper's two-stage localization algorithm and its ML
//! extension:
//!
//! * [`likelihood`] — the radially-symmetric Gaussian ring model and its
//!   robust (outlier-floored) variant;
//! * [`approx`] — the sampling-based initial approximation;
//! * [`mod@refine`] — robust iterative reweighted least squares on the
//!   almost-linear system `cᵢ·s ≈ ηᵢ`;
//! * [`localizer`] — the baseline (no-ML) pipeline;
//! * [`ml`] — the Fig.-6 loop weaving the background and dEta networks
//!   into localization, with per-stage timing capture.

pub mod approx;
pub mod likelihood;
pub mod localizer;
pub mod ml;
pub mod refine;
pub mod skymap;
pub mod uncertainty;

pub use approx::{approximate, ApproxConfig};
pub use likelihood::{angular_z, cone_geometry, joint_log_likelihood, ring_log_likelihood};
pub use localizer::{BaselineLocalizer, LocalizeResult, LocalizerConfig};
pub use ml::{
    BackgroundModel, DEtaUpdate, InferenceBackend, InferenceWorkspace, MlLocalizeResult,
    MlLocalizer, MlPipelineConfig, StageTimings,
};
pub use refine::{refine, RefineConfig, RefineResult};
pub use skymap::{HemisphereGrid, SkyMap};
pub use uncertainty::{estimate_uncertainty, DirectionUncertainty};
