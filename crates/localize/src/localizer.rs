//! The baseline (no-ML) localizer: approximation followed by robust
//! iterative refinement — the paper's "prior pipeline".

use crate::approx::{approximate, ApproxConfig};
use crate::refine::{refine, RefineConfig, RefineResult};
use adapt_math::vec3::UnitVec3;
use adapt_recon::ComptonRing;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the two-stage baseline localizer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LocalizerConfig {
    /// Approximation-stage tunables.
    pub approx: ApproxConfig,
    /// Refinement-stage tunables.
    pub refine: RefineConfig,
}

/// The localizer's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizeResult {
    /// Final source-direction estimate.
    pub direction: UnitVec3,
    /// The approximation stage's initial estimate.
    pub initial: UnitVec3,
    /// Refinement details.
    pub refine: RefineResult,
}

/// The baseline localizer.
#[derive(Debug, Clone, Default)]
pub struct BaselineLocalizer {
    /// Stage configuration.
    pub config: LocalizerConfig,
}

impl BaselineLocalizer {
    /// With explicit configuration.
    pub fn new(config: LocalizerConfig) -> Self {
        BaselineLocalizer { config }
    }

    /// Localize from a set of rings. Returns `None` when the rings cannot
    /// support a solution (too few, degenerate geometry).
    pub fn localize<R: Rng + ?Sized>(
        &self,
        rings: &[ComptonRing],
        rng: &mut R,
    ) -> Option<LocalizeResult> {
        let (initial, _ll) = approximate(rings, &self.config.approx, rng)?;
        let refined = refine(rings, initial, &self.config.refine)?;
        Some(LocalizeResult {
            direction: refined.direction,
            initial,
            refine: refined,
        })
    }

    /// Refine only, from a provided initial estimate (used by the ML loop,
    /// which re-enters refinement after updating dη).
    pub fn refine_from(&self, rings: &[ComptonRing], initial: UnitVec3) -> Option<RefineResult> {
        refine(rings, initial, &self.config.refine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_math::angles::angular_separation;
    use adapt_recon::RingFeatures;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(61)
    }

    fn rings_through(source: UnitVec3, n: usize, jitter: f64, seed: u64) -> Vec<ComptonRing> {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let axis = adapt_math::sampling::isotropic_direction(&mut r);
                let eta = (axis.cos_angle_to(source)
                    + jitter * adapt_math::sampling::standard_normal(&mut r))
                .clamp(-0.999, 0.999);
                ComptonRing {
                    axis,
                    eta,
                    d_eta: jitter.max(0.005),
                    features: RingFeatures::zeroed(),
                    truth: None,
                }
            })
            .collect()
    }

    #[test]
    fn end_to_end_synthetic_localization() {
        let source = UnitVec3::from_spherical(0.5, 1.5);
        let rings = rings_through(source, 100, 0.02, 1);
        let res = BaselineLocalizer::default()
            .localize(&rings, &mut rng())
            .unwrap();
        let err = angular_separation(res.direction, source);
        assert!(err < 1.5, "error {err} deg");
        // refinement should beat the raw approximation
        let approx_err = angular_separation(res.initial, source);
        assert!(err <= approx_err + 1e-9);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let loc = BaselineLocalizer::default();
        assert!(loc.localize(&[], &mut rng()).is_none());
        let rings = rings_through(UnitVec3::PLUS_Z, 2, 0.01, 2);
        assert!(loc.localize(&rings, &mut rng()).is_none());
    }

    #[test]
    fn refine_from_external_start() {
        let source = UnitVec3::from_spherical(0.2, 0.4);
        let rings = rings_through(source, 60, 0.015, 3);
        let start = UnitVec3::from_spherical(0.3, 0.3);
        let res = BaselineLocalizer::default()
            .refine_from(&rings, start)
            .unwrap();
        assert!(angular_separation(res.direction, source) < 1.5);
    }
}
