//! Angular bookkeeping helpers.
//!
//! The experiment harness reports everything in degrees (matching the
//! paper's figures), while the physics and likelihood code work in radians
//! and cosines. These helpers keep the conversions in one place.

use crate::vec3::UnitVec3;

/// Degrees → radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * std::f64::consts::PI / 180.0
}

/// Radians → degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / std::f64::consts::PI
}

/// Angular separation between two directions, in degrees — the paper's
/// "localization error" metric between true and inferred source.
#[inline]
pub fn angular_separation(a: UnitVec3, b: UnitVec3) -> f64 {
    rad_to_deg(a.angle_to(b))
}

/// Polar angle of a direction in degrees from the detector zenith (+z).
/// A source directly overhead has polar angle 0°; one on the horizon, 90°.
#[inline]
pub fn polar_angle_deg(dir: UnitVec3) -> f64 {
    rad_to_deg(dir.polar_angle())
}

/// The index of the ten-degree polar-angle bin containing `polar_deg`,
/// clamped to `0..n_bins`. The paper bins thresholds per 10° of polar
/// angle over `[0°, 90°)`.
#[inline]
pub fn polar_bin(polar_deg: f64, n_bins: usize) -> usize {
    debug_assert!(n_bins > 0);
    let idx = (polar_deg / 10.0).floor();
    if idx < 0.0 {
        0
    } else {
        (idx as usize).min(n_bins - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    #[test]
    fn conversions_round_trip() {
        for d in [-180.0, -90.0, 0.0, 45.0, 180.0, 360.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-12);
        }
        assert!((deg_to_rad(180.0) - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn separation_of_axes() {
        let x = Vec3::X.normalized();
        let y = Vec3::Y.normalized();
        let z = Vec3::Z.normalized();
        assert!((angular_separation(x, y) - 90.0).abs() < 1e-9);
        assert!((angular_separation(x, x) - 0.0).abs() < 1e-9);
        assert!((angular_separation(z, z.flipped()) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn polar_angle_of_known_directions() {
        assert!((polar_angle_deg(UnitVec3::PLUS_Z) - 0.0).abs() < 1e-9);
        assert!((polar_angle_deg(UnitVec3::PLUS_X) - 90.0).abs() < 1e-9);
        let mid = UnitVec3::from_spherical(deg_to_rad(40.0), 1.0);
        assert!((polar_angle_deg(mid) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn polar_bin_edges() {
        assert_eq!(polar_bin(0.0, 9), 0);
        assert_eq!(polar_bin(9.99, 9), 0);
        assert_eq!(polar_bin(10.0, 9), 1);
        assert_eq!(polar_bin(85.0, 9), 8);
        assert_eq!(polar_bin(95.0, 9), 8); // clamped
        assert_eq!(polar_bin(-5.0, 9), 0); // clamped
    }
}
