//! 3-D vectors and unit vectors.
//!
//! [`Vec3`] is a plain Cartesian triple; [`UnitVec3`] is a newtype that
//! guarantees (up to floating-point error) unit norm, which lets the
//! localization code treat directions and positions as distinct types.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A Cartesian 3-vector of `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Normalize, returning `None` for (near-)zero vectors.
    #[inline]
    pub fn try_normalize(self) -> Option<UnitVec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(UnitVec3(self / n))
        }
    }

    /// Normalize, panicking on a zero vector. Use in contexts where the
    /// vector is known non-zero (e.g. the difference of two distinct hits).
    #[inline]
    pub fn normalized(self) -> UnitVec3 {
        self.try_normalize().expect("cannot normalize zero vector")
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Linear interpolation `self + t * (rhs - self)`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The component array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Build from a component array.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A unit-norm direction in 3-space.
///
/// Constructed via [`Vec3::normalized`]/[`Vec3::try_normalize`] or the
/// spherical-coordinate constructor [`UnitVec3::from_spherical`]. The inner
/// vector is accessible via [`UnitVec3::as_vec`] or `Deref`-like `.0` is kept
/// private to preserve the invariant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitVec3(Vec3);

impl UnitVec3 {
    /// The +z axis, the detector zenith in ADAPT's frame.
    pub const PLUS_Z: UnitVec3 = UnitVec3(Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    });
    /// The +x axis.
    pub const PLUS_X: UnitVec3 = UnitVec3(Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    });
    /// The +y axis.
    pub const PLUS_Y: UnitVec3 = UnitVec3(Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    });

    /// From polar angle `theta` (radians from +z) and azimuth `phi`
    /// (radians from +x toward +y).
    #[inline]
    pub fn from_spherical(theta: f64, phi: f64) -> Self {
        let (st, ct) = theta.sin_cos();
        let (sp, cp) = phi.sin_cos();
        UnitVec3(Vec3::new(st * cp, st * sp, ct))
    }

    /// The underlying vector.
    #[inline]
    pub fn as_vec(self) -> Vec3 {
        self.0
    }

    /// Dot product with another unit vector: the cosine of the angle
    /// between them, clamped into `[-1, 1]` so `acos` is always safe.
    #[inline]
    pub fn cos_angle_to(self, rhs: UnitVec3) -> f64 {
        self.0.dot(rhs.0).clamp(-1.0, 1.0)
    }

    /// Angle in radians to another unit direction.
    #[inline]
    pub fn angle_to(self, rhs: UnitVec3) -> f64 {
        self.cos_angle_to(rhs).acos()
    }

    /// Dot with an arbitrary vector.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.0.dot(rhs)
    }

    /// Polar angle (radians from +z).
    #[inline]
    pub fn polar_angle(self) -> f64 {
        self.0.z.clamp(-1.0, 1.0).acos()
    }

    /// Azimuthal angle in radians in `(-pi, pi]`.
    #[inline]
    pub fn azimuth(self) -> f64 {
        self.0.y.atan2(self.0.x)
    }

    /// Flip direction.
    #[inline]
    pub fn flipped(self) -> UnitVec3 {
        UnitVec3(-self.0)
    }

    /// An arbitrary unit vector orthogonal to `self`, chosen stably by
    /// crossing with the axis least aligned with `self`.
    pub fn any_orthogonal(self) -> UnitVec3 {
        let v = self.0;
        let pick = if v.x.abs() <= v.y.abs() && v.x.abs() <= v.z.abs() {
            Vec3::X
        } else if v.y.abs() <= v.z.abs() {
            Vec3::Y
        } else {
            Vec3::Z
        };
        v.cross(pick).normalized()
    }

    /// An orthonormal basis `(u, v)` spanning the plane orthogonal to
    /// `self`, such that `(u, v, self)` is right-handed.
    pub fn orthonormal_basis(self) -> (UnitVec3, UnitVec3) {
        let u = self.any_orthogonal();
        let v = self.0.cross(u.0).normalized();
        (u, v)
    }

    /// Renormalize to squash accumulated rounding drift.
    #[inline]
    pub fn renormalized(self) -> UnitVec3 {
        self.0.normalized()
    }
}

impl From<UnitVec3> for Vec3 {
    #[inline]
    fn from(u: UnitVec3) -> Vec3 {
        u.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn dot_and_cross_basics() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn norm_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.norm() - 5.0).abs() < EPS);
        assert!((v.distance(Vec3::ZERO) - 5.0).abs() < EPS);
        assert!((v.norm_sq() - 25.0).abs() < EPS);
    }

    #[test]
    fn normalize_zero_is_none() {
        assert!(Vec3::ZERO.try_normalize().is_none());
        assert!(Vec3::new(1e-310, 0.0, 0.0).try_normalize().is_none());
    }

    #[test]
    fn normalized_has_unit_norm() {
        let u = Vec3::new(1.0, -2.0, 3.0).normalized();
        assert!((u.as_vec().norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn spherical_round_trip() {
        let theta = 0.7;
        let phi = -1.3;
        let u = UnitVec3::from_spherical(theta, phi);
        assert!((u.polar_angle() - theta).abs() < 1e-12);
        assert!((u.azimuth() - phi).abs() < 1e-12);
    }

    #[test]
    fn spherical_poles() {
        let up = UnitVec3::from_spherical(0.0, 0.0);
        assert!((up.as_vec() - Vec3::Z).norm() < EPS);
        let down = UnitVec3::from_spherical(std::f64::consts::PI, 0.0);
        assert!((down.as_vec() + Vec3::Z).norm() < 1e-9);
    }

    #[test]
    fn orthonormal_basis_is_orthonormal_and_right_handed() {
        for dir in [
            UnitVec3::PLUS_Z,
            UnitVec3::from_spherical(1.1, 2.2),
            UnitVec3::from_spherical(3.0, -0.4),
            Vec3::new(1e-8, 1.0, -1e-8).normalized(),
        ] {
            let (u, v) = dir.orthonormal_basis();
            assert!(u.dot(dir.as_vec()).abs() < 1e-10);
            assert!(v.dot(dir.as_vec()).abs() < 1e-10);
            assert!(u.dot(v.as_vec()).abs() < 1e-10);
            // right-handed: u x v = dir
            let w = u.as_vec().cross(v.as_vec());
            assert!((w - dir.as_vec()).norm() < 1e-9);
        }
    }

    #[test]
    fn cos_angle_clamped() {
        let a = Vec3::new(1.0, 0.0, 0.0).normalized();
        // identical vectors: numerically could exceed 1 without clamping
        assert!(a.cos_angle_to(a) <= 1.0);
        assert_eq!(a.angle_to(a), 0.0);
        assert!((a.angle_to(a.flipped()) - std::f64::consts::PI).abs() < EPS);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn array_round_trip() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }
}
