//! Small dense linear algebra.
//!
//! The localizer's refinement step solves a weighted 3×3 normal-equations
//! system per iteration; propagation of error needs Jacobian products; and
//! the NN library's reference paths use the general solver in tests. All
//! systems here are tiny, so the implementations favour clarity and
//! robustness (partial pivoting) over blocking.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A 3×3 matrix, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// All-zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// Identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Build from rows.
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 {
            m: [[r0.x, r0.y, r0.z], [r1.x, r1.y, r1.z], [r2.x, r2.y, r2.z]],
        }
    }

    /// The symmetric outer product `w * v v^T` accumulated into `self`;
    /// the building block of normal equations `A^T W A`.
    pub fn add_scaled_outer(&mut self, v: Vec3, w: f64) {
        let a = [v.x, v.y, v.z];
        for i in 0..3 {
            for j in 0..3 {
                self.m[i][j] += w * a[i] * a[j];
            }
        }
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Add `lambda` to the diagonal (Tikhonov regularization).
    pub fn add_diagonal(&mut self, lambda: f64) {
        for i in 0..3 {
            self.m[i][i] += lambda;
        }
    }
}

/// Solve `A x = b` for a 3×3 system by Gaussian elimination with partial
/// pivoting. Returns `None` when the pivot underflows (singular system).
pub fn solve3(a: &Mat3, b: Vec3) -> Option<Vec3> {
    let mut aug = [
        [a.m[0][0], a.m[0][1], a.m[0][2], b.x],
        [a.m[1][0], a.m[1][1], a.m[1][2], b.y],
        [a.m[2][0], a.m[2][1], a.m[2][2], b.z],
    ];
    for col in 0..3 {
        // partial pivot
        let mut pivot = col;
        for row in (col + 1)..3 {
            if aug[row][col].abs() > aug[pivot][col].abs() {
                pivot = row;
            }
        }
        if aug[pivot][col].abs() < 1e-300 {
            return None;
        }
        aug.swap(col, pivot);
        let p = aug[col][col];
        for row in 0..3 {
            if row == col {
                continue;
            }
            let f = aug[row][col] / p;
            let pivot_row = aug[col];
            for (v, pv) in aug[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *v -= f * pv;
            }
        }
    }
    let x = Vec3::new(
        aug[0][3] / aug[0][0],
        aug[1][3] / aug[1][1],
        aug[2][3] / aug[2][2],
    );
    x.is_finite().then_some(x)
}

/// Solve a general dense `n×n` system in place by Gaussian elimination with
/// partial pivoting. `a` is row-major with stride `n`; `b` has length `n`.
/// Returns the solution, or `None` if the matrix is singular.
///
/// Used by tests and by the NN library's reference implementations; the hot
/// paths only need [`solve3`].
pub fn solve_dense(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        let mut pivot = col;
        for row in (col + 1)..n {
            if m[row * n + col].abs() > m[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if m[pivot * n + col].abs() < 1e-300 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
            }
            rhs.swap(col, pivot);
        }
        let p = m[col * n + col];
        for row in 0..n {
            if row == col {
                continue;
            }
            let f = m[row * n + col] / p;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= f * m[col * n + k];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    let mut x = vec![0.0; n];
    for i in 0..n {
        x[i] = rhs[i] / m[i * n + i];
        if !x[i].is_finite() {
            return None;
        }
    }
    Some(x)
}

/// Accumulator for the weighted linear least-squares problem
/// `min_x sum_i w_i (a_i · x - y_i)^2` over 3-vectors `a_i`, solved through
/// the normal equations. This is precisely the "almost-linear least squares"
/// at the heart of the paper's localization refinement: each Compton ring
/// contributes a row `c_i · s ≈ η_i` with weight `1/dη_i²`.
#[derive(Debug, Clone)]
pub struct WeightedLsq3 {
    ata: Mat3,
    atb: Vec3,
    weight_sum: f64,
    count: usize,
}

impl Default for WeightedLsq3 {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightedLsq3 {
    /// An empty accumulator.
    pub fn new() -> Self {
        WeightedLsq3 {
            ata: Mat3::ZERO,
            atb: Vec3::ZERO,
            weight_sum: 0.0,
            count: 0,
        }
    }

    /// Clear without deallocating (the struct is `Copy`-sized anyway; this
    /// mirrors the "workhorse collection" idiom for call-site clarity).
    pub fn reset(&mut self) {
        *self = WeightedLsq3::new();
    }

    /// Add one observation `a · x ≈ y` with weight `w ≥ 0`.
    pub fn add(&mut self, a: Vec3, y: f64, w: f64) {
        debug_assert!(w >= 0.0, "negative weight");
        self.ata.add_scaled_outer(a, w);
        self.atb += a * (w * y);
        self.weight_sum += w;
        self.count += 1;
    }

    /// Number of observations added.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total weight added.
    pub fn weight_sum(&self) -> f64 {
        self.weight_sum
    }

    /// Solve the normal equations, with optional ridge `lambda` to keep the
    /// system well-posed when rings are nearly coaxial.
    pub fn solve(&self, lambda: f64) -> Option<Vec3> {
        let mut ata = self.ata;
        if lambda > 0.0 {
            ata.add_diagonal(lambda * self.weight_sum.max(1e-12));
        }
        solve3(&ata, self.atb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve3_known_system() {
        let a = Mat3::from_rows(
            Vec3::new(2.0, 1.0, -1.0),
            Vec3::new(-3.0, -1.0, 2.0),
            Vec3::new(-2.0, 1.0, 2.0),
        );
        let b = Vec3::new(8.0, -11.0, -3.0);
        let x = solve3(&a, b).unwrap();
        assert!((x - Vec3::new(2.0, 3.0, -1.0)).norm() < 1e-10);
    }

    #[test]
    fn solve3_singular_returns_none() {
        let a = Mat3::from_rows(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(2.0, 4.0, 6.0),
            Vec3::new(0.0, 1.0, 1.0),
        );
        assert!(solve3(&a, Vec3::new(1.0, 2.0, 3.0)).is_none());
    }

    #[test]
    fn solve3_identity() {
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(solve3(&Mat3::IDENTITY, b), Some(b));
    }

    #[test]
    fn solve_dense_matches_solve3() {
        let a = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let b = [8.0, -11.0, -3.0];
        let x = solve_dense(&a, &b, 3).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn solve_dense_1x1_and_singular() {
        assert_eq!(solve_dense(&[4.0], &[8.0], 1).unwrap(), vec![2.0]);
        assert!(solve_dense(&[0.0], &[1.0], 1).is_none());
    }

    #[test]
    fn solve_dense_permuted_identity_needs_pivoting() {
        // leading zero pivot forces a row swap
        let a = [0.0, 1.0, 1.0, 0.0];
        let b = [3.0, 7.0];
        let x = solve_dense(&a, &b, 2).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_lsq_recovers_exact_solution() {
        // rows sampled around a known x*, exact observations
        let x_star = Vec3::new(0.3, -0.4, 0.8);
        let mut lsq = WeightedLsq3::new();
        let dirs = [
            Vec3::new(1.0, 0.0, 0.1),
            Vec3::new(0.0, 1.0, -0.2),
            Vec3::new(0.5, 0.5, 1.0),
            Vec3::new(-0.3, 0.8, 0.4),
        ];
        for (i, d) in dirs.iter().enumerate() {
            lsq.add(*d, d.dot(x_star), 1.0 + i as f64);
        }
        let x = lsq.solve(0.0).unwrap();
        assert!((x - x_star).norm() < 1e-10);
        assert_eq!(lsq.count(), 4);
    }

    #[test]
    fn weighted_lsq_weights_prefer_heavy_rows() {
        // two inconsistent observations along the same axis: the solution
        // lands at the weighted mean
        let mut lsq = WeightedLsq3::new();
        lsq.add(Vec3::X, 1.0, 3.0);
        lsq.add(Vec3::X, 2.0, 1.0);
        // regularize the unconstrained y, z directions
        let x = lsq.solve(1e-9).unwrap();
        assert!((x.x - 1.25).abs() < 1e-6, "got {}", x.x);
    }

    #[test]
    fn weighted_lsq_underdetermined_without_ridge_is_none() {
        let mut lsq = WeightedLsq3::new();
        lsq.add(Vec3::X, 1.0, 1.0);
        assert!(lsq.solve(0.0).is_none());
        assert!(lsq.solve(1e-6).is_some());
    }

    #[test]
    fn det_of_rotation_like() {
        assert!((Mat3::IDENTITY.det() - 1.0).abs() < 1e-15);
        let mut m = Mat3::IDENTITY;
        m.m[0][0] = 2.0;
        assert!((m.det() - 2.0).abs() < 1e-15);
    }
}
