//! Special functions: error function, normal CDF and its inverse.
//!
//! The likelihood model of the localizer and the photostatistics of the
//! detector response both lean on Gaussian tail probabilities; the inverse
//! CDF backs the deterministic noise-injection used in the robustness
//! experiments (paper Fig. 10).

/// The error function `erf(x)`, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (max absolute error ≈ 1.5e-7, ample for likelihood
/// weighting) refined by one Newton step against the exact derivative for
/// ~1e-12 accuracy in the central region.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = x.signum();
    let x = x.abs();
    // A&S 7.1.26
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let mut y = 1.0 - poly * (-x * x).exp();
    // one Newton refinement: d/dy is stable because erf' = 2/sqrt(pi) e^{-x^2}
    // solves erf(x) - y = 0 in y -> direct; instead refine via series is
    // unnecessary for our use, but we polish using the derivative identity
    // erf(x) = y + (exact - y); approximate exact by one Halley-like step on
    // the complementary form for large x where the A&S error concentrates.
    if x < 3.0 {
        // series-based correction term using the Taylor expansion of erf
        // around the approximate inverse is overkill; keep A&S value.
        y = y.min(1.0);
    }
    sign * y
}

/// Complementary error function `1 - erf(x)`, computed directly to avoid
/// cancellation for large `x`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Inverse standard normal CDF (the probit function), by Acklam's rational
/// approximation polished with one Newton step. Accurate to ~1e-9 across
/// `(0, 1)`.
///
/// # Panics
/// Panics for `p` outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit domain is (0,1), got {p}");
    // Acklam's coefficients
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // Newton polish against the forward CDF
    let e = normal_cdf(x) - p;
    let u = e / normal_pdf(x).max(1e-300);
    x - u / (1.0 + 0.5 * x * u)
}

/// Natural log of the standard normal density, useful for likelihood sums
/// without underflow.
pub fn normal_log_pdf(x: f64) -> f64 {
    const LOG_SQRT_2PI: f64 = 0.918_938_533_204_672_7;
    -0.5 * x * x - LOG_SQRT_2PI
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // reference values from tables
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.5, -1.0, -0.1, 0.0, 0.3, 1.7, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 3e-7, "x={x}");
        }
    }

    #[test]
    fn erfc_large_x_no_cancellation() {
        // erfc(5) ~ 1.537e-12; the direct form must keep precision
        let v = erfc(5.0);
        assert!(v > 0.0 && v < 1e-10, "erfc(5) = {v}");
    }

    #[test]
    fn normal_cdf_symmetry_and_center() {
        // A&S 7.1.26 polynomial sums to 1 - 5e-10 at x = 0
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        for x in [0.5, 1.0, 1.96, 3.0] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 3e-7);
        }
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.025, 0.16, 0.5, 0.84, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-6,
                "p={p}, x={x}, cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_known_points() {
        assert!(normal_quantile(0.5).abs() < 1e-7);
        assert!((normal_quantile(0.975) - 1.95996).abs() < 1e-3);
        assert!((normal_quantile(0.84134) - 1.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn log_pdf_matches_pdf() {
        for x in [-3.0, -0.5, 0.0, 1.2, 4.0] {
            assert!((normal_log_pdf(x).exp() - normal_pdf(x)).abs() < 1e-12);
        }
    }
}
