//! Streaming statistics, quantiles, containment radii, and histograms.
//!
//! The paper reports localization accuracy as *68 % and 95 % containment*:
//! the largest angular error observed in at most that fraction of trials.
//! [`containment_radius`] implements exactly that order statistic, and
//! [`RunningStats`] provides the mean/range summaries used in the timing
//! tables.

use serde::{Deserialize, Serialize};

/// Welford-style streaming moments plus min/max tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Extend with many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        for x in it {
            self.push(x);
        }
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// The `q`-quantile (`q` in `[0, 1]`) of a sample, by linear interpolation
/// between closest ranks (the "R-7" definition used by NumPy's default).
///
/// Returns `None` on an empty slice. The input need not be sorted; a sorted
/// copy is made internally.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// As [`quantile`], for pre-sorted data (ascending) without reallocation.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The paper's containment statistic: the largest error observed in at most
/// `fraction` of the trials — i.e. the smallest radius `r` such that at
/// least `fraction` of values are `≤ r`, taken as the order statistic at
/// `ceil(fraction * n) - 1` of the sorted sample.
pub fn containment_radius(errors: &[f64], fraction: f64) -> Option<f64> {
    if errors.is_empty() {
        return None;
    }
    assert!(
        (0.0..=1.0).contains(&fraction),
        "containment fraction out of range"
    );
    let mut sorted = errors.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in containment input"));
    let n = sorted.len();
    let k = ((fraction * n as f64).ceil() as usize).clamp(1, n);
    Some(sorted[k - 1])
}

/// A fixed-bin 1-D histogram over `[lo, hi)` with overflow/underflow
/// counters, used for spectra and error distributions in the experiment
/// reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram of `nbins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "empty histogram range");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one value.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Total entries including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Entries below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Entries at or above range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Merge another histogram with identical binning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        assert_eq!(self.lo, other.lo, "range mismatch");
        assert_eq!(self.hi, other.hi, "range mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(data.iter().copied());
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(data[..37].iter().copied());
        b.extend(data[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.extend([1.0, 2.0]);
        let before = s.clone();
        s.merge(&RunningStats::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let v = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.25), Some(2.5));
        assert_eq!(quantile(&v, 0.75), Some(7.5));
    }

    #[test]
    fn containment_is_order_statistic() {
        // 10 values 1..=10: 68% containment -> ceil(6.8)=7th smallest = 7
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(containment_radius(&v, 0.68), Some(7.0));
        assert_eq!(containment_radius(&v, 0.95), Some(10.0));
        assert_eq!(containment_radius(&v, 0.1), Some(1.0));
        assert_eq!(containment_radius(&[], 0.68), None);
    }

    #[test]
    fn containment_single_value() {
        assert_eq!(containment_radius(&[4.2], 0.68), Some(4.2));
    }

    #[test]
    fn containment_monotone_in_fraction() {
        let v: Vec<f64> = (0..57).map(|i| ((i * 7919) % 100) as f64).collect();
        let mut last = f64::NEG_INFINITY;
        for i in 1..=20 {
            let f = i as f64 / 20.0;
            let c = containment_radius(&v, f).unwrap();
            assert!(c >= last, "containment not monotone at f={f}");
            last = c;
        }
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.99, -1.0, 10.0, 25.0] {
            h.push(x);
        }
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.push(0.1);
        b.push(0.1);
        b.push(0.9);
        a.merge(&b);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[3], 1);
        assert_eq!(a.total(), 3);
    }
}
