//! Proper rotations of 3-space.
//!
//! Localization and the Monte-Carlo transport both need frame changes: the
//! transport scatters photons by a polar/azimuthal pair relative to the
//! current travel direction, and the localizer parameterizes candidate
//! source directions on a Compton ring by rotating around the ring axis.

use crate::vec3::{UnitVec3, Vec3};
use serde::{Deserialize, Serialize};

/// A 3×3 proper rotation matrix, stored row-major.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rotation {
    rows: [Vec3; 3],
}

impl Rotation {
    /// The identity rotation.
    pub const IDENTITY: Rotation = Rotation {
        rows: [
            Vec3 {
                x: 1.0,
                y: 0.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 1.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        ],
    };

    /// Rodrigues' formula: rotation by `angle` radians about `axis`
    /// (right-hand rule).
    pub fn about_axis(axis: UnitVec3, angle: f64) -> Rotation {
        let (s, c) = angle.sin_cos();
        let k = axis.as_vec();
        let one_c = 1.0 - c;
        // R = c I + s [k]_x + (1-c) k k^T
        let row = |i: usize| {
            let e = [k.x, k.y, k.z];
            let kx = match i {
                0 => Vec3::new(0.0, -k.z, k.y),
                1 => Vec3::new(k.z, 0.0, -k.x),
                _ => Vec3::new(-k.y, k.x, 0.0),
            };
            let ident = match i {
                0 => Vec3::X,
                1 => Vec3::Y,
                _ => Vec3::Z,
            };
            ident * c + kx * s + k * (one_c * e[i])
        };
        Rotation {
            rows: [row(0), row(1), row(2)],
        }
    }

    /// The rotation taking `+z` to `dir` by the shortest arc. Any rotation
    /// with this property differs only by a roll about `dir`; this one is
    /// deterministic and continuous away from `dir = -z`.
    pub fn z_to(dir: UnitVec3) -> Rotation {
        let z = UnitVec3::PLUS_Z;
        let c = z.cos_angle_to(dir);
        if c > 1.0 - 1e-14 {
            return Rotation::IDENTITY;
        }
        if c < -1.0 + 1e-14 {
            // 180 degrees about x
            return Rotation::about_axis(UnitVec3::PLUS_X, std::f64::consts::PI);
        }
        let axis = z.as_vec().cross(dir.as_vec()).normalized();
        Rotation::about_axis(axis, c.acos())
    }

    /// Apply to a vector.
    #[inline]
    pub fn apply(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }

    /// Apply to a unit vector; the result is renormalized to guard against
    /// rounding drift in long transport chains.
    #[inline]
    pub fn apply_unit(&self, u: UnitVec3) -> UnitVec3 {
        self.apply(u.as_vec()).normalized()
    }

    /// Matrix product `self * rhs` (apply `rhs` first).
    pub fn compose(&self, rhs: &Rotation) -> Rotation {
        let cols = rhs.transpose();
        let row = |r: Vec3| {
            Vec3::new(
                r.dot(cols.rows[0]),
                r.dot(cols.rows[1]),
                r.dot(cols.rows[2]),
            )
        };
        Rotation {
            rows: [row(self.rows[0]), row(self.rows[1]), row(self.rows[2])],
        }
    }

    /// Transpose — for a rotation, also the inverse.
    pub fn transpose(&self) -> Rotation {
        let r = &self.rows;
        Rotation {
            rows: [
                Vec3::new(r[0].x, r[1].x, r[2].x),
                Vec3::new(r[0].y, r[1].y, r[2].y),
                Vec3::new(r[0].z, r[1].z, r[2].z),
            ],
        }
    }

    /// The inverse rotation.
    #[inline]
    pub fn inverse(&self) -> Rotation {
        self.transpose()
    }

    /// Maximum absolute deviation of `R^T R` from the identity — a
    /// diagnostic of orthonormality used in tests.
    pub fn orthonormality_error(&self) -> f64 {
        let t = self.transpose();
        let p = t.compose(self);
        let mut err: f64 = 0.0;
        let ident = Rotation::IDENTITY;
        for i in 0..3 {
            let d = p.rows[i] - ident.rows[i];
            err = err.max(d.x.abs()).max(d.y.abs()).max(d.z.abs());
        }
        err
    }
}

/// Rotate `dir` by polar angle `theta` and azimuth `phi` *relative to its
/// own frame*: the result makes angle `theta` with `dir`, with `phi`
/// selecting the position around the cone.
///
/// This is the core operation of Compton scattering in the transport code
/// and of ring parameterization in the localizer.
pub fn deflect(dir: UnitVec3, theta: f64, phi: f64) -> UnitVec3 {
    let (u, v) = dir.orthonormal_basis();
    let (st, ct) = theta.sin_cos();
    let (sp, cp) = phi.sin_cos();
    (dir.as_vec() * ct + u.as_vec() * (st * cp) + v.as_vec() * (st * sp)).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Rotation::IDENTITY.apply(v), v);
    }

    #[test]
    fn quarter_turn_about_z() {
        let r = Rotation::about_axis(UnitVec3::PLUS_Z, FRAC_PI_2);
        let out = r.apply(Vec3::X);
        assert!((out - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm_and_angles() {
        let r = Rotation::about_axis(UnitVec3::from_spherical(1.0, 2.0), 0.8);
        let a = Vec3::new(1.0, -2.0, 0.5);
        let b = Vec3::new(0.3, 0.3, -1.0);
        assert!((r.apply(a).norm() - a.norm()).abs() < 1e-12);
        assert!((r.apply(a).dot(r.apply(b)) - a.dot(b)).abs() < 1e-12);
    }

    #[test]
    fn z_to_maps_z_onto_target() {
        for dir in [
            UnitVec3::from_spherical(0.0, 0.0),
            UnitVec3::from_spherical(0.3, 1.0),
            UnitVec3::from_spherical(2.9, -2.0),
            UnitVec3::from_spherical(PI, 0.0),
        ] {
            let r = Rotation::z_to(dir);
            let mapped = r.apply_unit(UnitVec3::PLUS_Z);
            assert!(
                mapped.angle_to(dir) < 1e-7,
                "z_to failed for {:?}: got {:?}",
                dir,
                mapped
            );
            assert!(r.orthonormality_error() < 1e-12);
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let r1 = Rotation::about_axis(UnitVec3::PLUS_X, 0.4);
        let r2 = Rotation::about_axis(UnitVec3::PLUS_Y, -1.1);
        let v = Vec3::new(0.2, -0.7, 1.5);
        let seq = r2.apply(r1.apply(v));
        let comp = r2.compose(&r1).apply(v);
        assert!((seq - comp).norm() < 1e-12);
    }

    #[test]
    fn inverse_undoes() {
        let r = Rotation::about_axis(UnitVec3::from_spherical(0.5, -0.3), 1.7);
        let v = Vec3::new(3.0, -1.0, 2.0);
        assert!((r.inverse().apply(r.apply(v)) - v).norm() < 1e-12);
    }

    #[test]
    fn deflect_angle_is_exact() {
        let dir = UnitVec3::from_spherical(0.9, 0.1);
        for &theta in &[0.0, 0.2, 1.0, 2.5, PI] {
            for &phi in &[0.0, 1.0, 3.0, -2.0] {
                let out = deflect(dir, theta, phi);
                assert!(
                    (out.angle_to(dir) - theta).abs() < 1e-9,
                    "deflect({theta}, {phi})"
                );
            }
        }
    }

    #[test]
    fn deflect_phi_sweeps_cone() {
        let dir = UnitVec3::PLUS_Z;
        let a = deflect(dir, 0.5, 0.0);
        let b = deflect(dir, 0.5, PI);
        // antipodal on the cone: the angle between them is 2*theta
        assert!((a.angle_to(b) - 1.0).abs() < 1e-9);
    }
}
