//! Random sampling helpers for the Monte-Carlo transport and workload
//! generators.
//!
//! All routines take an `&mut impl Rng` so callers can thread seeded,
//! reproducible generators (the experiment harness derives one independent
//! stream per trial).

use crate::vec3::UnitVec3;
use rand::Rng;

/// A direction drawn uniformly from the full sphere.
pub fn isotropic_direction<R: Rng + ?Sized>(rng: &mut R) -> UnitVec3 {
    let cos_theta: f64 = rng.gen_range(-1.0..=1.0);
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    UnitVec3::from_spherical(cos_theta.acos(), phi)
}

/// A direction drawn uniformly from the upper hemisphere (`z ≥ 0`).
pub fn hemisphere_direction<R: Rng + ?Sized>(rng: &mut R) -> UnitVec3 {
    let cos_theta: f64 = rng.gen_range(0.0..=1.0);
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    UnitVec3::from_spherical(cos_theta.acos(), phi)
}

/// A direction from the *lower* hemisphere biased toward the horizon, with
/// density `∝ sin^k(θ)` in polar angle over `[90°, 180°)` for shape
/// parameter `k ≥ 0` — a crude stand-in for the atmospheric albedo
/// background, which peaks near the Earth's limb. Sampled by rejection.
pub fn limb_biased_updirection<R: Rng + ?Sized>(rng: &mut R, k: f64) -> UnitVec3 {
    debug_assert!(k >= 0.0);
    loop {
        let theta: f64 = rng.gen_range(std::f64::consts::FRAC_PI_2..std::f64::consts::PI);
        let accept: f64 = rng.gen_range(0.0..1.0);
        if accept <= theta.sin().powf(k) {
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            return UnitVec3::from_spherical(theta, phi);
        }
    }
}

/// Sample `E` from a power law `dN/dE ∝ E^gamma` on `[e_min, e_max]`
/// (gamma may be any real; gamma = -1 handled via the log form).
///
/// Power laws are the workhorse of both the GRB Band spectrum's high-energy
/// wing (`β = -2.35` in the paper's setup) and the atmospheric background
/// spectrum.
pub fn power_law<R: Rng + ?Sized>(rng: &mut R, gamma: f64, e_min: f64, e_max: f64) -> f64 {
    assert!(e_min > 0.0 && e_max > e_min, "invalid power-law support");
    let u: f64 = rng.gen_range(0.0..1.0);
    if (gamma + 1.0).abs() < 1e-12 {
        // dN/dE ∝ 1/E: inverse-CDF is exponential in log-space
        (e_min.ln() + u * (e_max.ln() - e_min.ln())).exp()
    } else {
        let g1 = gamma + 1.0;
        let lo = e_min.powf(g1);
        let hi = e_max.powf(g1);
        (lo + u * (hi - lo)).powf(1.0 / g1)
    }
}

/// Sample from an exponential with the given `mean` (inverse-CDF method).
/// Used for free-path lengths in transport.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Sample from a Poisson distribution with rate `lambda`.
///
/// Knuth's product method for small rates; for `lambda > 30` a Gaussian
/// approximation with continuity correction (adequate for event counts in
/// the thousands, where the relative error is < 1e-3).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen_range(0.0..1.0);
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen_range(0.0_f64..1.0);
            count += 1;
        }
        count
    } else {
        let z: f64 = standard_normal(rng);
        let x = lambda + lambda.sqrt() * z + 0.5;
        if x < 0.0 {
            0
        } else {
            x as u64
        }
    }
}

/// A standard normal variate by Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A Gaussian variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0x5EED)
    }

    #[test]
    fn isotropic_mean_is_near_zero() {
        let mut r = rng();
        let mut sx = RunningStats::new();
        let mut sz = RunningStats::new();
        for _ in 0..20_000 {
            let d = isotropic_direction(&mut r).as_vec();
            sx.push(d.x);
            sz.push(d.z);
        }
        assert!(sx.mean().abs() < 0.02, "x mean {}", sx.mean());
        assert!(sz.mean().abs() < 0.02, "z mean {}", sz.mean());
        // var of each component of a uniform sphere direction = 1/3
        assert!((sz.variance() - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn hemisphere_stays_up() {
        let mut r = rng();
        for _ in 0..2000 {
            assert!(hemisphere_direction(&mut r).as_vec().z >= 0.0);
        }
    }

    #[test]
    fn limb_biased_points_down() {
        let mut r = rng();
        let mut stats = RunningStats::new();
        for _ in 0..5000 {
            let d = limb_biased_updirection(&mut r, 4.0);
            assert!(d.as_vec().z <= 1e-12);
            stats.push(crate::angles::polar_angle_deg(d));
        }
        // with k=4 the mass concentrates near 90-130 degrees
        assert!(
            stats.mean() > 95.0 && stats.mean() < 130.0,
            "{}",
            stats.mean()
        );
    }

    #[test]
    fn power_law_bounds_and_shape() {
        let mut r = rng();
        let mut below_1 = 0usize;
        let n = 50_000;
        for _ in 0..n {
            let e = power_law(&mut r, -2.35, 0.03, 10.0);
            assert!((0.03..=10.0).contains(&e));
            if e < 1.0 {
                below_1 += 1;
            }
        }
        // analytic CDF at 1.0 for gamma=-2.35 on [0.03, 10]:
        // F(1) = (0.03^-1.35 - 1^-1.35) / (0.03^-1.35 - 10^-1.35)
        let g1 = -1.35_f64;
        let f = |e: f64| e.powf(g1);
        let cdf1 = (f(0.03) - f(1.0)) / (f(0.03) - f(10.0));
        let got = below_1 as f64 / n as f64;
        assert!((got - cdf1).abs() < 0.01, "got {got}, want {cdf1}");
    }

    #[test]
    fn power_law_gamma_minus_one() {
        let mut r = rng();
        for _ in 0..1000 {
            let e = power_law(&mut r, -1.0, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&e));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let mut s = RunningStats::new();
        for _ in 0..50_000 {
            s.push(exponential(&mut r, 2.5));
        }
        assert!((s.mean() - 2.5).abs() < 0.05, "{}", s.mean());
    }

    #[test]
    fn poisson_small_and_large_rates() {
        let mut r = rng();
        for &lambda in &[0.5, 3.0, 12.0, 80.0, 500.0] {
            let mut s = RunningStats::new();
            for _ in 0..20_000 {
                s.push(poisson(&mut r, lambda) as f64);
            }
            assert!(
                (s.mean() - lambda).abs() < 4.0 * (lambda / 20_000.0).sqrt() + 0.55,
                "lambda {lambda}: mean {}",
                s.mean()
            );
            assert!(
                (s.variance() - lambda).abs() < 0.15 * lambda + 0.5,
                "lambda {lambda}: var {}",
                s.variance()
            );
        }
    }

    #[test]
    fn poisson_zero_rate() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let mut s = RunningStats::new();
        for _ in 0..100_000 {
            s.push(standard_normal(&mut r));
        }
        assert!(s.mean().abs() < 0.02);
        assert!((s.variance() - 1.0).abs() < 0.03);
    }

    #[test]
    fn normal_scales() {
        let mut r = rng();
        let mut s = RunningStats::new();
        for _ in 0..50_000 {
            s.push(normal(&mut r, 10.0, 3.0));
        }
        assert!((s.mean() - 10.0).abs() < 0.1);
        assert!((s.std_dev() - 3.0).abs() < 0.1);
    }
}
