//! Mathematical foundations for the ADAPT ML reproduction.
//!
//! This crate collects the geometry, small-scale linear algebra, statistics,
//! and sampling utilities shared by the physics simulator, the event
//! reconstruction, the neural-network library, and the localization stages.
//!
//! Everything here is deliberately dependency-light and allocation-conscious:
//! the hot paths of the pipeline (photon transport, ring intersection,
//! batched inference) call into these routines millions of times per
//! simulated burst.
//!
//! # Modules
//!
//! * [`vec3`] — 3-D vectors and unit vectors with the usual algebra.
//! * [`rotation`] — proper rotations (3×3 orthonormal matrices), Rodrigues
//!   construction, and frame transforms.
//! * [`linalg`] — small dense matrices, 3×3 solvers, and the weighted
//!   least-squares kernel used by localization.
//! * [`stats`] — streaming moments, quantiles, containment radii, and
//!   histograms.
//! * [`special`] — `erf`/`erfc`, the normal CDF and its inverse.
//! * [`sampling`] — random directions, power-law sampling, and other
//!   distribution helpers used by the Monte-Carlo transport.
//! * [`angles`] — angular-separation helpers and degree/radian conversions.

pub mod angles;
pub mod linalg;
pub mod rotation;
pub mod sampling;
pub mod special;
pub mod stats;
pub mod vec3;

pub use angles::{angular_separation, deg_to_rad, polar_angle_deg, rad_to_deg};
pub use linalg::{solve3, Mat3};
pub use rotation::Rotation;
pub use stats::{containment_radius, quantile, Histogram, RunningStats};
pub use vec3::{UnitVec3, Vec3};

/// Electron rest mass energy in MeV, the natural energy scale of Compton
/// kinematics (`m_e c^2`).
pub const ELECTRON_REST_MEV: f64 = 0.510_998_95;

/// A tolerance suitable for comparing unit-norm quantities accumulated over
/// a handful of floating-point operations.
pub const UNIT_EPS: f64 = 1e-9;
