//! Property-based tests of the math foundations.

use adapt_math::angles::{deg_to_rad, rad_to_deg};
use adapt_math::linalg::{solve3, solve_dense, Mat3, WeightedLsq3};
use adapt_math::rotation::{deflect, Rotation};
use adapt_math::special::{erf, erfc, normal_cdf, normal_quantile};
use adapt_math::stats::{containment_radius, quantile, RunningStats};
use adapt_math::vec3::{UnitVec3, Vec3};
use proptest::prelude::*;

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_unit() -> impl Strategy<Value = UnitVec3> {
    (0.0f64..std::f64::consts::PI, -3.2f64..3.2).prop_map(|(t, p)| UnitVec3::from_spherical(t, p))
}

proptest! {
    #[test]
    fn cross_product_orthogonal(a in arb_vec3(), b in arb_vec3()) {
        let c = a.cross(b);
        // orthogonality scaled by magnitudes to stay numerically fair
        let scale = a.norm() * b.norm();
        prop_assume!(scale > 1e-6);
        prop_assert!(c.dot(a).abs() <= 1e-9 * scale * a.norm().max(1.0));
        prop_assert!(c.dot(b).abs() <= 1e-9 * scale * b.norm().max(1.0));
    }

    #[test]
    fn lagrange_identity(a in arb_vec3(), b in arb_vec3()) {
        // |a x b|^2 + (a.b)^2 = |a|^2 |b|^2
        let lhs = a.cross(b).norm_sq() + a.dot(b) * a.dot(b);
        let rhs = a.norm_sq() * b.norm_sq();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1.0));
    }

    #[test]
    fn rotations_preserve_inner_products(
        axis in arb_unit(),
        angle in -6.3f64..6.3,
        a in arb_vec3(),
        b in arb_vec3(),
    ) {
        let r = Rotation::about_axis(axis, angle);
        let da = r.apply(a);
        let db = r.apply(b);
        prop_assert!((da.dot(db) - a.dot(b)).abs() <= 1e-8 * (a.norm() * b.norm()).max(1.0));
        prop_assert!(r.orthonormality_error() < 1e-12);
    }

    #[test]
    fn rotation_inverse_round_trip(axis in arb_unit(), angle in -6.3f64..6.3, v in arb_vec3()) {
        let r = Rotation::about_axis(axis, angle);
        let back = r.inverse().apply(r.apply(v));
        prop_assert!((back - v).norm() <= 1e-9 * v.norm().max(1.0));
    }

    #[test]
    fn deflect_preserves_cone_angle(dir in arb_unit(), theta in 0.0f64..3.1, phi in 0.0f64..6.2) {
        let out = deflect(dir, theta, phi);
        prop_assert!((out.angle_to(dir) - theta).abs() < 1e-8);
        prop_assert!((out.as_vec().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn angle_conversions_inverse(d in -720.0f64..720.0) {
        prop_assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-9);
    }

    #[test]
    fn solve3_solves(m in proptest::array::uniform9(-10.0f64..10.0), b in proptest::array::uniform3(-10.0f64..10.0)) {
        let a = Mat3 { m: [[m[0], m[1], m[2]], [m[3], m[4], m[5]], [m[6], m[7], m[8]]] };
        let rhs = Vec3::new(b[0], b[1], b[2]);
        prop_assume!(a.det().abs() > 1e-3);
        let x = solve3(&a, rhs).expect("well-conditioned system");
        let residual = a.mul_vec(x) - rhs;
        prop_assert!(residual.norm() < 1e-6, "residual {}", residual.norm());
    }

    #[test]
    fn solve_dense_matches_solve3(m in proptest::array::uniform9(-10.0f64..10.0), b in proptest::array::uniform3(-10.0f64..10.0)) {
        let a3 = Mat3 { m: [[m[0], m[1], m[2]], [m[3], m[4], m[5]], [m[6], m[7], m[8]]] };
        prop_assume!(a3.det().abs() > 1e-3);
        let x3 = solve3(&a3, Vec3::new(b[0], b[1], b[2])).unwrap();
        let xn = solve_dense(&m, &b, 3).unwrap();
        prop_assert!((x3.x - xn[0]).abs() < 1e-6);
        prop_assert!((x3.y - xn[1]).abs() < 1e-6);
        prop_assert!((x3.z - xn[2]).abs() < 1e-6);
    }

    #[test]
    fn weighted_lsq_exact_recovery(
        target in proptest::array::uniform3(-5.0f64..5.0),
        dirs in proptest::collection::vec(arb_unit(), 4..20),
    ) {
        let x_star = Vec3::new(target[0], target[1], target[2]);
        let mut lsq = WeightedLsq3::new();
        for d in &dirs {
            lsq.add(d.as_vec(), d.dot(x_star), 1.0);
        }
        if let Some(x) = lsq.solve(1e-12) {
            // with >=4 generic directions the system is determined
            let err = (x - x_star).norm();
            prop_assert!(err < 1e-4 || dirs.len() < 6, "err {err} with {} dirs", dirs.len());
        }
    }

    #[test]
    fn quantile_within_range(mut values in proptest::collection::vec(-100.0f64..100.0, 1..200), q in 0.0f64..1.0) {
        let qv = quantile(&values, q).unwrap();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(qv >= values[0] - 1e-12 && qv <= values[values.len() - 1] + 1e-12);
    }

    #[test]
    fn containment_bounds_quantile(values in proptest::collection::vec(0.0f64..180.0, 1..200), f in 0.01f64..1.0) {
        let c = containment_radius(&values, f).unwrap();
        // containment radius is an order statistic of the sample
        prop_assert!(values.iter().any(|&v| (v - c).abs() < 1e-12));
        let frac_below = values.iter().filter(|&&v| v <= c).count() as f64 / values.len() as f64;
        prop_assert!(frac_below >= f - 1e-9, "containment property violated");
    }

    #[test]
    fn running_stats_merge_associative(
        a in proptest::collection::vec(-50.0f64..50.0, 1..50),
        b in proptest::collection::vec(-50.0f64..50.0, 1..50),
        c in proptest::collection::vec(-50.0f64..50.0, 1..50),
    ) {
        let stats = |vs: &[f64]| {
            let mut s = RunningStats::new();
            s.extend(vs.iter().copied());
            s
        };
        let mut left = stats(&a);
        left.merge(&stats(&b));
        left.merge(&stats(&c));
        let mut right_inner = stats(&b);
        right_inner.merge(&stats(&c));
        let mut right = stats(&a);
        right.merge(&right_inner);
        prop_assert!((left.mean() - right.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - right.variance()).abs() < 1e-9);
        prop_assert_eq!(left.count(), right.count());
    }

    #[test]
    fn erf_is_odd_and_bounded(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-9);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 3e-7);
    }

    #[test]
    fn probit_inverts_cdf(p in 0.001f64..0.999) {
        let x = normal_quantile(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-6);
    }
}
