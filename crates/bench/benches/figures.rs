//! Regenerates every table and figure of the paper in one `cargo bench`
//! pass (harness = false). Respects the same `ADAPT_*` environment knobs
//! as the per-figure binaries; defaults keep the full sweep to a few
//! minutes on a laptop.

fn main() {
    let t0 = std::time::Instant::now();
    let models = adapt_bench::shared_models();
    println!("models ready ({:.1} s)\n", t0.elapsed().as_secs_f64());
    let spec = adapt_core::TrialSpec::from_env();
    println!("trial spec: {spec:?}\n");

    println!("{}", adapt_bench::run_train_report(&models));
    println!("{}", adapt_bench::run_fig4(&models, spec));
    println!("{}", adapt_bench::run_fig7(&models, spec));
    println!("{}", adapt_bench::run_fig8(&models, spec));
    println!("{}", adapt_bench::run_fig9(&models, spec));
    println!("{}", adapt_bench::run_fig10(&models, spec));
    println!("{}", adapt_bench::run_fig11(&models, spec));
    println!(
        "{}",
        adapt_bench::run_table12(&models, adapt_bench::timing_reps())
    );
    println!("{}", adapt_bench::run_table3(&models));
    println!("{}", adapt_bench::run_ablations(&models, spec));
    println!("{}", adapt_bench::run_detection(spec));
    println!("{}", adapt_bench::run_pileup(&models, spec));
    println!("{}", adapt_bench::run_failure_injection(&models, spec));
    println!("{}", adapt_bench::run_fpga_dse());
    println!("{}", adapt_bench::run_quant_strategies(&models));
    println!("total wall time: {:.1} s", t0.elapsed().as_secs_f64());
}
