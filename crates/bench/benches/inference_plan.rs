//! Criterion benchmarks for the two localization hot-loop optimizations:
//!
//! * **compiled inference plans** — `CompiledMlp::forward_batch` (BN
//!   folded, flat weight buffer, reusable scratch, register-tiled kernel)
//!   against the layer-walking `Mlp::predict` on a paper-scale batch of
//!   rings;
//! * **compiled fixed-point INT8 plans** — `CompiledQuantMlp::forward_batch`
//!   (flat i8 weights, per-row `(multiplier, shift)` requantization,
//!   zero-alloc scratch) against the per-sample scalar reference
//!   `QuantizedMlp::forward_one_reference` on the same batch;
//! * **coarse-to-fine sky maps** — `SkyMap::from_rings_adaptive` against
//!   the flat `SkyMap::from_rings` sweep on a ≥10k-pixel grid.
//!
//! `cargo bench --bench inference_plan`. The checked-in
//! `BENCH_pipeline.json` numbers come from the `bench_pipeline` binary,
//! which exercises the same pairs.

use adapt_localize::{HemisphereGrid, SkyMap};
use adapt_math::sampling::{isotropic_direction, standard_normal};
use adapt_math::vec3::UnitVec3;
use adapt_nn::mlp::BlockOrder;
use adapt_nn::{models, CompiledMlp, InferenceScratch, Matrix, Mlp, QuantScratch, QuantizedMlp};
use adapt_recon::{ComptonRing, RingFeatures};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn trained_background_net(order: BlockOrder) -> Mlp {
    let mut rng = ChaCha8Rng::seed_from_u64(40);
    let mut net = models::background_network(13, order, &mut rng);
    // push BN running statistics off init so folding is non-trivial
    let calib = Matrix::he_uniform(256, 13, &mut rng);
    net.forward(&calib, true);
    net
}

fn bench_compiled_inference(c: &mut Criterion) {
    let net = trained_background_net(BlockOrder::BatchNormFirst);
    let plan = CompiledMlp::compile(&net);
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let batch = Matrix::he_uniform(256, 13, &mut rng);

    let mut group = c.benchmark_group("background_net_256_rings");
    group.bench_function("mlp_predict", |b| b.iter(|| black_box(net.predict(&batch))));
    group.bench_function("compiled_forward_batch", |b| {
        let mut scratch = InferenceScratch::new();
        b.iter(|| {
            let out = plan.forward_batch(&batch, &mut scratch);
            black_box(out[0])
        })
    });
    group.finish();
}

fn bench_int8_inference(c: &mut Criterion) {
    // quantization requires the LinearFirst (quantization-friendly) order
    let net = trained_background_net(BlockOrder::LinearFirst);
    let mut rng = ChaCha8Rng::seed_from_u64(40);
    let calib = Matrix::he_uniform(256, 13, &mut rng);
    let qnet = QuantizedMlp::quantize(&net, &calib);
    let plan = qnet.plan();
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let batch = Matrix::he_uniform(256, 13, &mut rng);
    let rows: Vec<Vec<f64>> = (0..256).map(|i| batch.row(i).to_vec()).collect();

    let mut group = c.benchmark_group("int8_background_net_256_rings");
    group.bench_function("per_sample_reference", |b| {
        b.iter(|| {
            black_box(
                rows.iter()
                    .map(|r| qnet.forward_one_reference(r))
                    .sum::<f64>(),
            )
        })
    });
    group.bench_function("compiled_forward_batch", |b| {
        let mut scratch = QuantScratch::new();
        b.iter(|| {
            let out = plan.forward_batch(&batch, &mut scratch);
            black_box(out[0])
        })
    });
    group.finish();
}

fn skymap_rings(n: usize, seed: u64) -> Vec<ComptonRing> {
    let source = UnitVec3::from_spherical(0.5, 1.0);
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let axis = isotropic_direction(&mut r);
            let eta =
                (axis.cos_angle_to(source) + 0.02 * standard_normal(&mut r)).clamp(-0.999, 0.999);
            ComptonRing {
                axis,
                eta,
                d_eta: 0.02,
                features: RingFeatures::zeroed(),
                truth: None,
            }
        })
        .collect()
}

fn bench_skymap(c: &mut Criterion) {
    let rings = skymap_rings(600, 42);
    let grid = HemisphereGrid::new(12_000);

    let mut group = c.benchmark_group("skymap_12k_pixels_600_rings");
    group.sample_size(10);
    group.bench_function("flat_sweep", |b| {
        b.iter(|| black_box(SkyMap::from_rings(&rings, grid.clone(), 3.0)))
    });
    group.bench_function("coarse_to_fine", |b| {
        b.iter(|| black_box(SkyMap::from_rings_adaptive(&rings, grid.clone(), 3.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compiled_inference,
    bench_int8_inference,
    bench_skymap
);
criterion_main!(benches);
