//! Criterion micro-benchmarks of the pipeline's hot kernels: per-ring
//! network inference (FP32 and INT8), photon transport, event
//! reconstruction, the localization stages, and the rayon-vs-sequential
//! burst simulation ablation called out in DESIGN.md.

use adapt_localize::{approximate, refine, ApproxConfig, RefineConfig};
use adapt_math::sampling::isotropic_direction;
use adapt_math::vec3::UnitVec3;
use adapt_nn::mlp::BlockOrder;
use adapt_nn::{models, Matrix, QuantizedMlp};
use adapt_recon::{ComptonRing, Reconstructor, RingFeatures};
use adapt_sim::{BurstSimulation, GrbConfig, ParticleOrigin};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let x = Matrix::he_uniform(256, 13, &mut rng);
    let w = Matrix::he_uniform(256, 13, &mut rng);
    c.bench_function("matmul_256x13_x_256", |b| {
        b.iter(|| black_box(x.matmul_transpose(&w)))
    });
}

fn bench_inference(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut fp32 = models::background_network(13, BlockOrder::LinearFirst, &mut rng);
    let calib = Matrix::he_uniform(128, 13, &mut rng);
    fp32.forward(&calib, true);
    let int8 = QuantizedMlp::quantize(&fp32, &calib);
    let x: Vec<f64> = (0..13).map(|i| (i as f64 * 0.3).sin()).collect();
    c.bench_function("background_net_fp32_one_ring", |b| {
        b.iter(|| black_box(fp32.predict_one(&x)))
    });
    c.bench_function("background_net_int8_one_ring", |b| {
        b.iter(|| black_box(int8.forward_one(&x)))
    });
    // batched inference of a paper-scale ring set
    let batch = Matrix::he_uniform(597, 13, &mut rng);
    c.bench_function("background_net_fp32_597_rings", |b| {
        b.iter(|| black_box(fp32.predict(&batch)))
    });
    c.bench_function("background_net_int8_597_rings", |b| {
        b.iter(|| black_box(int8.forward(&batch)))
    });
}

fn bench_transport(c: &mut Criterion) {
    let sim = BurstSimulation::with_defaults(GrbConfig::new(1.0, 0.0));
    let transport = sim.transport().clone();
    let down = UnitVec3::PLUS_Z.flipped();
    c.bench_function("transport_one_photon_1mev", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            let entry = transport.sample_entry_point(&mut rng, down);
            black_box(transport.trace(
                &mut rng,
                entry,
                down,
                1.0,
                ParticleOrigin::Grb,
                UnitVec3::PLUS_Z,
            ))
        })
    });
}

fn bench_reconstruction(c: &mut Criterion) {
    let sim = BurstSimulation::with_defaults(GrbConfig::new(1.0, 0.0));
    let data = sim.simulate(11);
    let recon = Reconstructor::default();
    c.bench_function("reconstruct_burst_events", |b| {
        b.iter(|| black_box(recon.reconstruct_all(&data.events)))
    });
}

fn synthetic_rings(n_src: usize, n_bkg: usize, seed: u64) -> (Vec<ComptonRing>, UnitVec3) {
    let source = UnitVec3::from_spherical(0.4, 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rings = Vec::new();
    for i in 0..(n_src + n_bkg) {
        let axis = isotropic_direction(&mut rng);
        let eta = if i < n_src {
            (axis.cos_angle_to(source) + 0.02 * adapt_math::sampling::standard_normal(&mut rng))
                .clamp(-0.999, 0.999)
        } else {
            rng.gen_range(-0.9..0.9)
        };
        rings.push(ComptonRing {
            axis,
            eta,
            d_eta: 0.02,
            features: RingFeatures::zeroed(),
            truth: None,
        });
    }
    (rings, source)
}

fn bench_localization(c: &mut Criterion) {
    let (rings, source) = synthetic_rings(170, 430, 5);
    c.bench_function("approximate_600_rings", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        b.iter(|| black_box(approximate(&rings, &ApproxConfig::default(), &mut rng)))
    });
    let start = UnitVec3::from_spherical(0.45, 1.05);
    c.bench_function("refine_600_rings", |b| {
        b.iter(|| black_box(refine(&rings, start, &RefineConfig::default())))
    });
    let _ = source;
}

fn bench_burst_parallelism(c: &mut Criterion) {
    let sim = BurstSimulation::with_defaults(GrbConfig::new(0.5, 0.0));
    let mut group = c.benchmark_group("burst_simulation");
    group.sample_size(10);
    group.bench_function("rayon_parallel", |b| {
        b.iter_batched(
            || (),
            |_| black_box(sim.simulate(21)),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("sequential", |b| {
        b.iter_batched(
            || (),
            |_| black_box(sim.simulate_sequential(21)),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_inference,
    bench_transport,
    bench_reconstruction,
    bench_localization,
    bench_burst_parallelism
);
criterion_main!(benches);
