//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each `run_*` function returns the formatted table its binary prints;
//! the `figures` bench target runs them all at a reduced trial count so
//! `cargo bench --workspace` regenerates the full result set. Scale any
//! run toward the paper's protocol with environment variables:
//!
//! | variable            | default | paper value |
//! |---------------------|---------|-------------|
//! | `ADAPT_TRIALS`      | 40      | 1000        |
//! | `ADAPT_META_TRIALS` | 3       | 10          |
//! | `ADAPT_TIMING_REPS` | 50      | 300         |
//! | `ADAPT_TRAIN_SCALE` | default | (270 M photons) |
//!
//! Trained models are cached at `target/adapt-models.json` (override with
//! `ADAPT_MODEL_CACHE`); delete the file to retrain.

use adapt_core::containment_experiment;
use adapt_core::prelude::*;
use adapt_core::{fluence_sweep, format_rows, measure_stages, noise_sweep, polar_sweep};
use adapt_fpga::{background_net_shapes, synthesize, FpgaKernel, Precision, SynthesisConfig};
use std::path::PathBuf;

pub mod matrix;
pub use matrix::{
    cell_seed, run_cell, run_matrix, scenario_catalog, smoke_verdict, CellOutcome, CellReport,
    MatrixConfig, MatrixReport, ScenarioSpec, SmokeVerdict, MATRIX_SCHEMA,
};

/// Polar-angle grid of the paper's sweeps.
pub const POLAR_ANGLES: [f64; 9] = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0];

/// Fluence grid of Fig. 9 (MeV/cm²).
pub const FLUENCES: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Noise grid of Fig. 10 (ε, percent).
pub const EPSILONS: [f64; 4] = [0.0, 1.0, 5.0, 10.0];

/// Where trained models are cached between runs.
pub fn model_cache_path() -> PathBuf {
    std::env::var("ADAPT_MODEL_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/adapt-models.json"))
}

/// The training campaign configuration selected by `ADAPT_TRAIN_SCALE`
/// (`fast` for CI-sized runs, anything else for the standard scale).
pub fn campaign_config() -> TrainingCampaignConfig {
    match std::env::var("ADAPT_TRAIN_SCALE").as_deref() {
        Ok("fast") => TrainingCampaignConfig::fast(),
        _ => TrainingCampaignConfig::default(),
    }
}

/// Load or train the model set shared by every experiment.
pub fn shared_models() -> TrainedModels {
    TrainedModels::load_or_train(&model_cache_path(), &campaign_config(), 0xADA7)
}

/// Fig. 4: impact of background particles and dη error on localization
/// accuracy (1 MeV/cm², normal incidence; baseline vs the two oracles).
pub fn run_fig4(models: &TrainedModels, spec: TrialSpec) -> String {
    let pipeline = Pipeline::new(models);
    let grb = GrbConfig::new(1.0, 0.0);
    let mut out = String::from(
        "Fig. 4 — error sources at 1 MeV/cm^2, normal incidence\n\
         (paper: full ~10-13 deg @68%; removing background and fixing d-eta\n\
          each substantially tighten both containment levels)\n\n",
    );
    out.push_str(&format!(
        "{:<30} {:>14} {:>14}\n",
        "configuration", "68% (deg)", "95% (deg)"
    ));
    for mode in [
        PipelineMode::Baseline,
        PipelineMode::OracleNoBackground,
        PipelineMode::OracleTrueDeta,
    ] {
        let stats = containment_experiment(
            &pipeline,
            mode,
            &grb,
            PerturbationConfig::default(),
            spec,
            0xF14,
        );
        out.push_str(&format!(
            "{:<30} {:>7.2}±{:<5.2} {:>7.2}±{:<5.2}\n",
            mode.label(),
            stats.c68_mean,
            stats.c68_err,
            stats.c95_mean,
            stats.c95_err
        ));
    }
    out
}

/// Fig. 7: impact of the polar-angle input feature.
pub fn run_fig7(models: &TrainedModels, spec: TrialSpec) -> String {
    let pipeline = Pipeline::new(models);
    let rows = polar_sweep(
        &pipeline,
        &[PipelineMode::MlNoPolar, PipelineMode::Ml],
        1.0,
        &POLAR_ANGLES,
        spec,
        0xF17,
    );
    format!(
        "Fig. 7 — polar-angle input ablation at 1 MeV/cm^2\n\
         (paper: the polar input helps most at the lowest/highest angles)\n\n{}",
        format_rows("angle", &rows)
    )
}

/// Fig. 8: accuracy vs polar angle, ML vs no ML.
pub fn run_fig8(models: &TrainedModels, spec: TrialSpec) -> String {
    let pipeline = Pipeline::new(models);
    let rows = polar_sweep(
        &pipeline,
        &[PipelineMode::Baseline, PipelineMode::Ml],
        1.0,
        &POLAR_ANGLES,
        spec,
        0xF18,
    );
    format!(
        "Fig. 8 — accuracy vs polar angle at 1 MeV/cm^2\n\
         (paper: ML consistently improves accuracy, especially 95% tails;\n\
          <=6 deg @68% across angles at >=1 MeV/cm^2)\n\n{}",
        format_rows("angle", &rows)
    )
}

/// Fig. 9: accuracy vs fluence at normal incidence.
pub fn run_fig9(models: &TrainedModels, spec: TrialSpec) -> String {
    let pipeline = Pipeline::new(models);
    let rows = fluence_sweep(
        &pipeline,
        &[PipelineMode::Baseline, PipelineMode::Ml],
        &FLUENCES,
        spec,
        0xF19,
    );
    format!(
        "Fig. 9 — accuracy vs fluence, normal incidence\n\
         (paper: ML wins grow for dimmer bursts; error shrinks with fluence)\n\n{}",
        format_rows("fluence", &rows)
    )
}

/// Fig. 10: robustness to unmodeled Gaussian perturbation.
pub fn run_fig10(models: &TrainedModels, spec: TrialSpec) -> String {
    let pipeline = Pipeline::new(models);
    let rows = noise_sweep(
        &pipeline,
        &[PipelineMode::Baseline, PipelineMode::Ml],
        1.0,
        &EPSILONS,
        spec,
        0xF1A,
    );
    format!(
        "Fig. 10 — accuracy with inputs perturbed by eps% Gaussian noise\n\
         (paper: ML keeps its advantage under perturbation; 68% error grows\n\
          more slowly with noise when the networks are in the loop)\n\n{}",
        format_rows("eps %", &rows)
    )
}

/// Fig. 11: INT8-quantized vs FP32 background model.
pub fn run_fig11(models: &TrainedModels, spec: TrialSpec) -> String {
    let pipeline = Pipeline::new(models);
    let rows = polar_sweep(
        &pipeline,
        &[PipelineMode::Ml, PipelineMode::MlQuantized],
        1.0,
        &POLAR_ANGLES,
        spec,
        0xF1B,
    );
    format!(
        "Fig. 11 — localization accuracy with the quantized background model\n\
         (paper: INT8 tracks FP32 at 68% containment; 95% tails degrade some)\n\n{}",
        format_rows("angle", &rows)
    )
}

/// Tables I/II: per-stage latency on this host (percentile columns).
pub fn run_table12(models: &TrainedModels, repetitions: usize) -> String {
    run_table12_with(models, repetitions, false)
}

/// As [`run_table12`]; `paper_layout` selects the paper's original
/// two-column (mean + range) rendering instead of the percentile table.
pub fn run_table12_with(models: &TrainedModels, repetitions: usize, paper_layout: bool) -> String {
    let pipeline = Pipeline::new(models);
    let table = measure_stages(&pipeline, repetitions, 0x712);
    format!(
        "Tables I/II — stage timing on this host over {} repetitions\n\
         (paper: RPi 3B+ total 834 ms [730-1116]; Atom total 220.7 ms\n\
          [204-246]; NN inference a modest share of the total)\n\n{}",
        repetitions,
        if paper_layout {
            table.format_paper()
        } else {
            table.format()
        }
    )
}

/// Table III: FPGA synthesis model, INT8 vs FP32, plus bit-exact co-sim.
pub fn run_table3(models: &TrainedModels) -> String {
    let cfg = SynthesisConfig::default();
    let shapes = background_net_shapes();
    let int8 = synthesize(&shapes, Precision::Int8, &cfg);
    let fp32 = synthesize(&shapes, Precision::Fp32, &cfg);
    let n_rings = 597; // paper's mean first-iteration ring count
    let mut out = String::from(
        "Table III — FPGA kernel model (10 ns clock), INT8 vs FP32\n\
         (paper: INT8 881/692 cycles, 4.13 ms for 597 rings, 1.75x the\n\
          FP32 throughput, far fewer BRAM/DSP/FF; absolute resource counts\n\
          below come from a first-order model, see EXPERIMENTS.md)\n\n",
    );
    out.push_str(&format!(
        "{:<28} {:>12} {:>12}\n",
        "Statistic", "INT8", "FP32"
    ));
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "Latency (cycles)",
            int8.latency_cycles as f64,
            fp32.latency_cycles as f64,
        ),
        (
            "Initiation Interval",
            int8.ii_cycles as f64,
            fp32.ii_cycles as f64,
        ),
        (
            "BRAM Blocks",
            int8.bram_blocks as f64,
            fp32.bram_blocks as f64,
        ),
        ("DSP Slices", int8.dsp_slices as f64, fp32.dsp_slices as f64),
        ("Flip-Flops", int8.flip_flops as f64, fp32.flip_flops as f64),
        (
            "Lookup Tables",
            int8.lookup_tables as f64,
            fp32.lookup_tables as f64,
        ),
        (
            "Latency (ms) for 597 rings",
            int8.batch_latency_ms(n_rings, 10.0),
            fp32.batch_latency_ms(n_rings, 10.0),
        ),
    ];
    for (name, a, b) in rows {
        out.push_str(&format!("{:<28} {:>12.2} {:>12.2}\n", name, a, b));
    }
    out.push_str(&format!(
        "\nthroughput ratio FP32->INT8: {:.2}x (paper: 1.75x)\n",
        fp32.ii_cycles as f64 / int8.ii_cycles as f64
    ));

    // bit-exact co-simulation of the INT8 kernel against software
    let kernel = FpgaKernel::new(&models.quantized_background, &cfg);
    let inputs: Vec<Vec<f64>> = (0..32)
        .map(|i| {
            (0..13)
                .map(|j| ((i * 13 + j) as f64 * 0.37).sin())
                .collect()
        })
        .collect();
    let cosim = kernel.cosimulate(&inputs);
    let sw: Vec<f64> = inputs
        .iter()
        .map(|x| models.quantized_background.forward_one(x))
        .collect();
    let exact = cosim.outputs.iter().zip(&sw).all(|(a, b)| a == b);
    out.push_str(&format!(
        "C/RTL-style co-simulation: {} outputs, bit-exact vs software: {}\n",
        cosim.outputs.len(),
        exact
    ));
    out
}

/// Training report: campaign sizes, validation losses, thresholds.
pub fn run_train_report(models: &TrainedModels) -> String {
    let mut out = String::from("Training report\n\n");
    out.push_str(&format!(
        "background val loss (BCE): {:.4}\nd-eta val loss (MSE on ln d-eta): {:.4}\n",
        models.val_losses.0, models.val_losses.1
    ));
    out.push_str("per-polar-bin thresholds: ");
    for t in models.thresholds.as_slice() {
        out.push_str(&format!("{:.2} ", t));
    }
    out.push('\n');
    for angle in [0.0, 40.0, 80.0] {
        let acc = adapt_core::training::background_accuracy_at(models, angle, 0xACC);
        out.push_str(&format!(
            "background accuracy on fresh burst @ {angle:>2.0} deg: {:.3}\n",
            acc
        ));
    }
    out
}

/// Measurement provenance shared by every JSON benchmark report
/// (`BENCH_pipeline.json`, `BENCH_stream.json`, `BENCH_ground.json`):
/// which tree, which CPU, and which kernel ISA the dispatcher actually
/// selected — so a checked-in report can never be mistaken for numbers
/// from a different machine or fallback path.
#[derive(serde::Serialize)]
pub struct EnvReport {
    pub git_rev: String,
    pub cpu_model: String,
    /// ISA the runtime dispatcher selects on this host.
    pub kernel_isa: String,
    /// CPU features the detector saw (superset of what the kernels use).
    pub isa_features: Vec<String>,
}

impl EnvReport {
    /// Capture provenance for this host using the dispatcher's current
    /// ISA selection (call before any `set_force_portable` games).
    pub fn capture() -> Self {
        EnvReport {
            git_rev: git_rev(),
            cpu_model: cpu_model(),
            kernel_isa: adapt_nn::active_isa().to_string(),
            isa_features: adapt_nn::detected_features()
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

/// Short git revision of the working tree, or `"unknown"` outside git.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// First `model name` from /proc/cpuinfo (Linux), or `"unknown"`.
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// The `"schema"` field of an existing report file, if any. Files from
/// before the field existed count as schema 1. Report writers use this
/// to refuse clobbering a file written by a *newer* schema, so a stale
/// binary cannot silently downgrade checked-in results.
pub fn existing_schema(path: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: serde::Value = serde_json::from_str(&text).ok()?;
    Some(match v.get("schema") {
        Some(serde::Value::UInt(n)) => *n,
        Some(serde::Value::Int(n)) => (*n).max(0) as u64,
        _ => 1,
    })
}

/// Timing repetitions from the environment (default 50; paper 300).
pub fn timing_reps() -> usize {
    std::env::var("ADAPT_TIMING_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// Ablation study over the design choices DESIGN.md calls out: the dEta
/// update policy, single-shot vs iterative background rejection, the
/// approximation sample size, and the refinement gate width.
pub fn run_ablations(models: &TrainedModels, spec: TrialSpec) -> String {
    use adapt_localize::{DEtaUpdate, MlPipelineConfig};
    let grb = GrbConfig::new(1.0, 0.0);
    let mut out = String::from("Ablations at 1 MeV/cm^2, normal incidence (68%/95% deg)\n\n");
    let mut run = |label: &str, cfg: MlPipelineConfig| {
        let pipeline = Pipeline::new(models).with_ml_config(cfg);
        let stats = containment_experiment(
            &pipeline,
            PipelineMode::Ml,
            &grb,
            PerturbationConfig::default(),
            spec,
            0xAB1A,
        );
        out.push_str(&format!(
            "{:<44} {:>6.2}±{:<5.2} {:>6.2}±{:<5.2}\n",
            label, stats.c68_mean, stats.c68_err, stats.c95_mean, stats.c95_err
        ));
    };

    run(
        "paper defaults (Replace, 5 iter)",
        MlPipelineConfig::default(),
    );
    run(
        "dEta policy: Inflate (only widen)",
        MlPipelineConfig {
            d_eta_update: DEtaUpdate::Inflate,
            ..Default::default()
        },
    );
    run(
        "dEta policy: Off (background net only)",
        MlPipelineConfig {
            d_eta_update: DEtaUpdate::Off,
            ..Default::default()
        },
    );
    run(
        "single-shot background rejection (1 iter)",
        MlPipelineConfig {
            max_ml_iterations: 1,
            ..Default::default()
        },
    );
    for sample in [8, 48] {
        let mut cfg = MlPipelineConfig::default();
        cfg.localizer.approx.sample_rings = sample;
        run(&format!("approx sample_rings = {sample}"), cfg);
    }
    for gate in [2.0, 5.0] {
        let mut cfg = MlPipelineConfig::default();
        cfg.localizer.refine.gate_z = gate;
        run(&format!("refinement gate_z = {gate}"), cfg);
    }
    out
}

/// Burst-trigger study (the "detect" half of detect-and-localize):
/// detection efficiency and trigger significance vs fluence.
pub fn run_detection(spec: TrialSpec) -> String {
    use adapt_core::trigger::{calibrate_background_rate, scan, TriggerConfig};
    use adapt_sim::{BurstSimulation, GrbConfig};
    // calibrate the quiet-time rate on a source-free exposure
    let quiet = BurstSimulation::with_defaults(GrbConfig::new(1e-9, 0.0));
    let mut rate = 0.0;
    let n_cal = 8;
    for seed in 0..n_cal {
        rate += calibrate_background_rate(&quiet.simulate(900 + seed).events, 1.0);
    }
    let rate = rate / n_cal as f64;

    let mut out = format!(
        "Burst-trigger study (background rate {rate:.0} events/s, 5-sigma threshold)\n\n{:>10} {:>12} {:>16} {:>14}\n",
        "fluence", "efficiency", "mean max-sigma", "trials"
    );
    let trials = spec.trials_per_meta * spec.meta_trials;
    for fluence in [0.01, 0.03, 0.1, 0.3, 1.0] {
        let sim = BurstSimulation::with_defaults(GrbConfig::new(fluence, 0.0));
        let mut detected = 0usize;
        let mut sig_sum = 0.0;
        for t in 0..trials {
            let data = sim.simulate(3000 + t as u64);
            let res = scan(&data.events, 1.0, rate, &TriggerConfig::default());
            if res.detected {
                detected += 1;
            }
            sig_sum += res.max_significance;
        }
        out.push_str(&format!(
            "{:>10.2} {:>12.2} {:>16.1} {:>14}\n",
            fluence,
            detected as f64 / trials as f64,
            sig_sum / trials as f64,
            trials
        ));
    }
    out
}

/// Pileup study (paper future work): localization accuracy when events
/// within the coincidence window merge, vs the clean readout, across
/// burst brightness (brighter bursts pile up more).
pub fn run_pileup(models: &TrainedModels, spec: TrialSpec) -> String {
    use adapt_math::stats::{containment_radius, RunningStats};
    use adapt_sim::PileupConfig;
    let pipeline = Pipeline::new(models);
    // a generous window exaggerates the effect enough to measure at
    // laptop-scale trial counts
    let pileup_cfg = PileupConfig {
        coincidence_window_s: 200e-6,
    };
    let trials = spec.trials_per_meta * spec.meta_trials;
    let mut out = format!(
        "Pileup study ({} us coincidence window, ML pipeline)\n\n{:>10} {:>10} {:>14} {:>14} {:>12}\n",
        pileup_cfg.coincidence_window_s * 1e6,
        "fluence",
        "readout",
        "68% (deg)",
        "95% (deg)",
        "pileup frac"
    );
    for fluence in [1.0, 4.0] {
        let grb = GrbConfig::new(fluence, 0.0);
        for clean in [true, false] {
            let mut errors = Vec::with_capacity(trials);
            let mut frac = RunningStats::new();
            for t in 0..trials {
                let seed = 5000 + t as u64;
                let outcome = if clean {
                    let (rings, rt) =
                        pipeline.simulate_rings(&grb, PerturbationConfig::default(), seed);
                    pipeline.localize_rings(&rings, PipelineMode::Ml, &grb, seed, rt)
                } else {
                    let (rings, rt, stats) = pipeline.simulate_rings_with_pileup(
                        &grb,
                        PerturbationConfig::default(),
                        &pileup_cfg,
                        seed,
                    );
                    frac.push(stats.pileup_fraction());
                    pipeline.localize_rings(&rings, PipelineMode::Ml, &grb, seed, rt)
                };
                errors.push(outcome.error_deg);
            }
            out.push_str(&format!(
                "{:>10.2} {:>10} {:>14.2} {:>14.2} {:>12.3}\n",
                fluence,
                if clean { "clean" } else { "pileup" },
                containment_radius(&errors, 0.68).unwrap(),
                containment_radius(&errors, 0.95).unwrap(),
                frac.mean(),
            ));
        }
    }
    out
}

/// Failure injection: localization accuracy with a fraction of fiber
/// cells dead (unmodeled instrument degradation).
pub fn run_failure_injection(models: &TrainedModels, spec: TrialSpec) -> String {
    let pipeline = Pipeline::new(models);
    let grb = GrbConfig::new(1.0, 0.0);
    let mut out =
        String::from("Failure injection: dead fiber cells at 1 MeV/cm^2 (ML pipeline)\n\n");
    out.push_str(&format!(
        "{:>12} {:>14} {:>14} {:>10}\n",
        "dead frac", "68% (deg)", "95% (deg)", "rings"
    ));
    for dead in [0.0, 0.05, 0.1, 0.2] {
        let stats = containment_experiment(
            &pipeline,
            PipelineMode::Ml,
            &grb,
            PerturbationConfig {
                epsilon_percent: 0.0,
                dead_channel_fraction: dead,
            },
            spec,
            0xDEAD,
        );
        out.push_str(&format!(
            "{:>12.2} {:>7.2}±{:<5.2} {:>7.2}±{:<5.2} {:>10.1}\n",
            dead, stats.c68_mean, stats.c68_err, stats.c95_mean, stats.c95_err, stats.mean_rings_in
        ));
    }
    out
}

/// FPGA design-space exploration: the II/resource Pareto frontier for
/// INT4 / INT8 / FP32 kernels.
pub fn run_fpga_dse() -> String {
    use adapt_fpga::{pareto_frontier, sweep};
    let shapes = background_net_shapes();
    let mut out = String::from("FPGA design-space exploration (background net, 10 ns clock)\n");
    for precision in [Precision::Int4, Precision::Int8, Precision::Fp32] {
        out.push_str(&format!(
            "\n{:?} Pareto frontier (II vs DSP):\n{:>10} {:>10} {:>10} {:>14}\n",
            precision, "II", "DSP", "BRAM", "ms/597 rings"
        ));
        let pts = sweep(&shapes, precision, 40, 4000, 10);
        for p in pareto_frontier(&pts) {
            out.push_str(&format!(
                "{:>10} {:>10} {:>10} {:>14.2}\n",
                p.report.ii_cycles, p.report.dsp_slices, p.report.bram_blocks, p.batch_ms_597
            ));
        }
    }
    out
}

/// Quantization-strategy comparison (paper future work): PTQ vs QAT,
/// per-tensor vs per-channel, INT8 vs INT4 — classifier accuracy on a
/// fresh burst's rings.
pub fn run_quant_strategies(models: &TrainedModels) -> String {
    use adapt_nn::{sigmoid, QuantScheme, QuantizedMlp, WeightBits};
    use adapt_recon::Reconstructor;
    use adapt_sim::BurstSimulation;
    // calibration set: rings from a training-like burst
    let sim = BurstSimulation::with_defaults(GrbConfig::new(4.0, 0.0));
    let cal_rings = Reconstructor::default().reconstruct_all(&sim.simulate(77).events);
    let mut cal = Vec::new();
    for r in &cal_rings {
        cal.extend_from_slice(&r.features.to_model_input(0.0));
    }
    let calib = adapt_nn::Matrix::from_vec(cal_rings.len(), 13, cal);
    // evaluation set: fresh burst
    let eval_rings = Reconstructor::default().reconstruct_all(&sim.simulate(78).events);
    let parent = &models.background_linear_first;
    let accuracy = |q: &QuantizedMlp| {
        let mut ok = 0;
        for r in &eval_rings {
            let x = r.features.to_model_input(0.0);
            let pred = sigmoid(q.forward_one(&x)) >= 0.5;
            if pred == r.is_background_truth() {
                ok += 1;
            }
        }
        ok as f64 / eval_rings.len() as f64
    };
    let float_acc = {
        let mut ok = 0;
        for r in &eval_rings {
            let x = r.features.to_model_input(0.0);
            if (sigmoid(parent.predict_one(&x)) >= 0.5) == r.is_background_truth() {
                ok += 1;
            }
        }
        ok as f64 / eval_rings.len() as f64
    };
    let mut out = format!(
        "Quantization strategies ({} eval rings)\n\nFP32 parent accuracy: {:.3}\n\n{:<34} {:>10} {:>12}\n",
        eval_rings.len(),
        float_acc,
        "strategy",
        "accuracy",
        "bytes"
    );
    for (label, scheme, bits) in [
        (
            "per-tensor INT8 (paper config)",
            QuantScheme::PerTensor,
            WeightBits::Int8,
        ),
        (
            "per-channel INT8",
            QuantScheme::PerChannel,
            WeightBits::Int8,
        ),
        ("per-tensor INT4", QuantScheme::PerTensor, WeightBits::Int4),
        (
            "per-channel INT4",
            QuantScheme::PerChannel,
            WeightBits::Int4,
        ),
    ] {
        let q = QuantizedMlp::quantize_with(parent, &calib, scheme, bits);
        out.push_str(&format!(
            "{:<34} {:>10.3} {:>12}\n",
            label,
            accuracy(&q),
            q.model_bytes()
        ));
    }
    out.push_str("\n(the cached QAT + per-tensor INT8 deployment model: ");
    out.push_str(&format!(
        "{:.3} accuracy, {} bytes)\n",
        accuracy(&models.quantized_background),
        models.quantized_background.model_bytes()
    ));
    out
}
