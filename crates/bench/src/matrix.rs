//! The trigger robustness matrix: hostile-sky scenarios × background
//! scales × trigger configs, each cell replayed through the full
//! [`FlightRuntime`] and scored against its ground-truth injections.
//!
//! Every cell is a deterministic simulation: the cell seed is derived
//! from the campaign seed and the cell's grid coordinates, so replaying
//! any single cell reproduces its alerts bit-identically. A cell run
//! captures per-decision trigger forensics (every fire/no-fire decision
//! near a truth onset) into an optional per-cell NDJSON file that
//! `adapt telemetry-report --forensics` can explain after the fact.
//!
//! `adapt matrix` and the `bench_matrix` binary drive
//! [`run_matrix`] and write the schema-versioned `BENCH_matrix.json`
//! consumed by `bench_gate` (detection-efficiency regressions are
//! contract violations) and rendered into EXPERIMENTS.md.

use crate::EnvReport;
use adapt_core::training::TrainedModels;
use adapt_onboard::{
    match_alerts_to_truth, FlightRuntime, RuntimeConfig, TruthMatchReport, FLIGHT_NOMINAL_FLUENCE,
};
use adapt_sim::{
    FlightProfile, GrbConfig, Scenario, ScenarioComponent, StreamConfig, StreamingSource,
};
use adapt_telemetry::{render_forensics, FlightRecorder, TriggerDecisionRecord};
use serde::Serialize;
use std::path::PathBuf;

/// `BENCH_matrix.json` schema version.
pub const MATRIX_SCHEMA: u64 = 1;

/// One scenario column of the matrix: a name, the scenario components,
/// and any extra bursts injected through the plain stream path.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Stable cell-id prefix (kebab-case).
    pub name: &'static str,
    /// The hostile-sky component stack.
    pub scenario: Scenario,
    /// Extra ground-truth bursts injected outside the scenario layer.
    pub bursts: Vec<(f64, GrbConfig)>,
}

impl ScenarioSpec {
    /// All ground-truth onsets of this scenario (explicit bursts plus
    /// scenario-layer injections), sorted.
    pub fn truth_onsets_s(&self) -> Vec<f64> {
        let mut onsets: Vec<f64> = self.bursts.iter().map(|(t, _)| *t).collect();
        onsets.extend(self.scenario.injections().iter().map(|inj| inj.t_onset_s));
        onsets.sort_by(f64::total_cmp);
        onsets
    }
}

/// The scenario catalog swept by the full matrix, parameterized by the
/// per-cell stream duration so onsets land after trigger calibration.
pub fn scenario_catalog(duration_s: f64) -> Vec<ScenarioSpec> {
    let d = duration_s;
    let mid = 0.5 * d;
    vec![
        ScenarioSpec {
            name: "quiet",
            scenario: Scenario::quiet(),
            bursts: vec![],
        },
        ScenarioSpec {
            name: "clean-burst",
            scenario: Scenario::quiet(),
            bursts: vec![(mid, GrbConfig::new(1.5, 0.0))],
        },
        ScenarioSpec {
            name: "back-to-back-bursts",
            scenario: Scenario::quiet().with(ScenarioComponent::BackToBackBursts {
                t_onset_s: 0.4 * d,
                separation_s: 20.0,
                fluence: 1.5,
                polar_deg: 10.0,
            }),
            bursts: vec![],
        },
        ScenarioSpec {
            name: "sgr-flare-train",
            scenario: Scenario::quiet().with(ScenarioComponent::SgrFlareTrain {
                t_start_s: 0.3 * d,
                period_s: 30.0,
                flares: 3,
                fluence: 1.0,
                polar_deg: 20.0,
            }),
            bursts: vec![],
        },
        ScenarioSpec {
            name: "solar-flare-ramp",
            scenario: Scenario::quiet().with(ScenarioComponent::SolarFlareRamp {
                t_start_s: 0.2 * d,
                rise_s: 30.0,
                hold_s: 0.4 * d,
                fall_s: 30.0,
                peak_multiplier: 3.0,
            }),
            bursts: vec![(mid, GrbConfig::new(1.5, 0.0))],
        },
        ScenarioSpec {
            name: "saa-step",
            scenario: Scenario::quiet().with(ScenarioComponent::SaaStep {
                t_start_s: 0.3 * d,
                t_end_s: 0.7 * d,
                multiplier: 2.5,
            }),
            bursts: vec![(mid, GrbConfig::new(1.5, 0.0))],
        },
        ScenarioSpec {
            name: "saa-spike",
            scenario: Scenario::quiet().with(ScenarioComponent::SaaSpike {
                t_s: mid,
                sigma_s: 2.0,
                multiplier: 6.0,
            }),
            bursts: vec![],
        },
        ScenarioSpec {
            name: "occultation-dip",
            // Earth occultation blocks the source as well as the
            // background: the dip scales the ambient rate down while a
            // co-timed dropout eats almost every photon — burst included.
            // The dim burst inside is the canonical missed-burst cell.
            scenario: Scenario::quiet()
                .with(ScenarioComponent::OccultationDip {
                    t_start_s: 0.35 * d,
                    t_end_s: 0.65 * d,
                    floor: 0.25,
                })
                .with(ScenarioComponent::DetectorDropout {
                    t_start_s: 0.35 * d,
                    t_end_s: 0.65 * d,
                    drop_fraction: 0.97,
                }),
            bursts: vec![(mid, GrbConfig::new(0.02, 40.0))],
        },
        ScenarioSpec {
            name: "detector-dropout",
            scenario: Scenario::quiet().with(ScenarioComponent::DetectorDropout {
                t_start_s: 0.4 * d,
                t_end_s: 0.6 * d,
                drop_fraction: 0.7,
            }),
            bursts: vec![(mid, GrbConfig::new(0.8, 0.0))],
        },
        ScenarioSpec {
            name: "dead-time",
            scenario: Scenario::quiet()
                .with(ScenarioComponent::DeadTime { tau_s: 2e-4 })
                .with(ScenarioComponent::SaaStep {
                    t_start_s: 0.3 * d,
                    t_end_s: 0.7 * d,
                    multiplier: 2.0,
                }),
            bursts: vec![(mid, GrbConfig::new(1.5, 0.0))],
        },
    ]
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Simulated stream length per cell (s).
    pub duration_s: f64,
    /// Background-scale axis (multiples of the nominal rate).
    pub background_scales: Vec<f64>,
    /// Trigger-threshold axis (sigmas).
    pub threshold_sigmas: Vec<f64>,
    /// Campaign seed; every cell derives its own seed from it.
    pub seed: u64,
    /// Write per-cell decision/alert NDJSON captures into this directory.
    pub ndjson_dir: Option<PathBuf>,
    /// Restrict the scenario axis to these names (empty = all).
    pub scenarios: Vec<String>,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            duration_s: 200.0,
            background_scales: vec![1.0, 3.0],
            threshold_sigmas: vec![7.0, 9.0],
            seed: 0x0ADA_97B1,
            ndjson_dir: None,
            scenarios: Vec::new(),
        }
    }
}

impl MatrixConfig {
    /// The CI smoke grid: quiet + clean-burst + the missed-burst cell at
    /// one background scale and the default threshold — small enough to
    /// gate every commit, rich enough to exercise both forensics paths.
    pub fn smoke() -> Self {
        MatrixConfig {
            duration_s: 120.0,
            background_scales: vec![1.0],
            threshold_sigmas: vec![7.0],
            scenarios: vec![
                "quiet".into(),
                "clean-burst".into(),
                "occultation-dip".into(),
            ],
            ..MatrixConfig::default()
        }
    }
}

/// The deterministic seed of one cell: campaign seed mixed with the
/// cell's grid coordinates (same constant as `epoch_rng_seed`, different
/// lanes), so replaying one cell never needs the rest of the grid.
pub fn cell_seed(campaign_seed: u64, scenario: &str, scale: f64, sigma: f64) -> u64 {
    let mut h = campaign_seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in scenario.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    h ^= (scale * 16.0) as u64;
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (sigma * 16.0) as u64
}

/// One scored cell of the matrix.
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    /// Stable id: `scenario/x{scale}/t{sigma}`.
    pub id: String,
    pub scenario: String,
    /// Scenario component kinds active in this cell.
    pub components: Vec<String>,
    pub background_scale: f64,
    pub threshold_sigma: f64,
    /// Replay seed: rerunning this cell with this seed is bit-identical.
    pub seed: u64,
    pub duration_s: f64,
    pub n_truth: usize,
    pub n_alerts: usize,
    pub detected: usize,
    pub missed: usize,
    pub false_alerts: usize,
    pub detection_efficiency: f64,
    pub false_alerts_per_hour: f64,
    /// Mean onset→trigger latency over the detected onsets (s).
    pub alert_latency_mean_s: Option<f64>,
    /// Mean containment radius over the emitted alerts (deg).
    pub mean_containment_deg: Option<f64>,
    pub events_ingested: u64,
    /// Trigger decisions captured for forensics.
    pub decisions_recorded: usize,
}

/// What one cell run produced beyond the scored row: the raw forensics
/// capture, for rendering or NDJSON export.
pub struct CellOutcome {
    pub report: CellReport,
    pub decisions: Vec<TriggerDecisionRecord>,
    pub truth: TruthMatchReport,
    /// Full NDJSON capture of the run (schema-versioned).
    pub ndjson: String,
}

/// Run one cell through the flight runtime and score it.
pub fn run_cell(
    models: &TrainedModels,
    spec: &ScenarioSpec,
    duration_s: f64,
    background_scale: f64,
    threshold_sigma: f64,
    seed: u64,
) -> CellOutcome {
    let mut stream = StreamConfig::new(FlightProfile::checkout_2h(), duration_s)
        .with_scenario(spec.scenario.clone());
    stream.start_h = 1.5;
    stream.background.particle_fluence = FLIGHT_NOMINAL_FLUENCE;
    stream.background_scale = background_scale;
    for (onset, grb) in &spec.bursts {
        stream = stream.with_burst(*onset, grb.clone());
    }
    let truth_onsets = spec.truth_onsets_s();

    // Deterministic cell contract: full-ml pinned (no wall-clock ladder)
    // and an ingest queue sized so DropNewest never engages — the alert
    // set and every decision record are a pure function of the seeds, so
    // any cell replays bit-identically from its recorded seed.
    let mut rc = RuntimeConfig {
        truth_onsets_s: truth_onsets.clone(),
        deterministic: true,
        ingest_capacity: 1 << 17,
        ..RuntimeConfig::default()
    };
    rc.trigger.threshold_sigma = threshold_sigma;
    rc.seed = seed;
    let truth_window_s = rc.truth_window_s;

    let recorder = FlightRecorder::new();
    let runtime = FlightRuntime::new(models, rc).with_recorder(&recorder);
    let report = runtime.run(StreamingSource::new(stream, seed));

    let truth = match_alerts_to_truth(&report.alerts, &truth_onsets, truth_window_s);
    let decisions = recorder.trigger_decision_records();
    let latency_mean = (!truth.latencies_s.is_empty())
        .then(|| truth.latencies_s.iter().sum::<f64>() / truth.latencies_s.len() as f64);
    let containment_mean = (!report.alerts.is_empty()).then(|| {
        report
            .alerts
            .iter()
            .map(|a| a.containment_radius_deg)
            .sum::<f64>()
            / report.alerts.len() as f64
    });
    let cell = CellReport {
        id: format!("{}/x{background_scale}/t{threshold_sigma}", spec.name),
        scenario: spec.name.to_string(),
        components: spec
            .scenario
            .components
            .iter()
            .map(|c| c.kind().to_string())
            .collect(),
        background_scale,
        threshold_sigma,
        seed,
        duration_s,
        n_truth: truth.n_truth,
        n_alerts: truth.n_alerts,
        detected: truth.detected,
        missed: truth.missed,
        false_alerts: truth.false_alerts,
        detection_efficiency: truth.detection_efficiency(),
        false_alerts_per_hour: truth.false_alerts as f64 / (duration_s / 3600.0),
        alert_latency_mean_s: latency_mean,
        mean_containment_deg: containment_mean,
        events_ingested: report.ingest_stats.pushed,
        decisions_recorded: decisions.len(),
    };
    CellOutcome {
        report: cell,
        decisions,
        truth,
        ndjson: adapt_telemetry::export(&recorder, 1),
    }
}

/// The schema-versioned campaign report written to `BENCH_matrix.json`.
#[derive(Serialize)]
pub struct MatrixReport {
    pub schema: u64,
    pub description: String,
    pub env: EnvReport,
    pub duration_s: f64,
    pub seed: u64,
    pub scenario_kinds: usize,
    pub background_scales: Vec<f64>,
    pub threshold_sigmas: Vec<f64>,
    pub cells: Vec<CellReport>,
}

impl MatrixReport {
    /// Render the matrix as fixed-width tables (one per threshold),
    /// ready for EXPERIMENTS.md or the terminal.
    pub fn render_tables(&self) -> String {
        let mut out = String::new();
        for &sigma in &self.threshold_sigmas {
            out.push_str(&format!("threshold {sigma:.1}σ\n"));
            out.push_str(&format!(
                "{:<22} {:>6} {:>6} {:>5} {:>7} {:>7} {:>9} {:>9} {:>10}\n",
                "scenario", "scale", "truth", "det", "missed", "false", "eff", "fa/hr", "latency_s"
            ));
            for c in self.cells.iter().filter(|c| c.threshold_sigma == sigma) {
                out.push_str(&format!(
                    "{:<22} {:>6.1} {:>6} {:>5} {:>7} {:>7} {:>9.2} {:>9.1} {:>10}\n",
                    c.scenario,
                    c.background_scale,
                    c.n_truth,
                    c.detected,
                    c.missed,
                    c.false_alerts,
                    c.detection_efficiency,
                    c.false_alerts_per_hour,
                    c.alert_latency_mean_s
                        .map(|v| format!("{v:.2}"))
                        .unwrap_or_else(|| "-".into()),
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// Violations the smoke grid treats as hard failures.
#[derive(Debug, Clone, Serialize)]
pub struct SmokeVerdict {
    /// Failures: quiet-cell false alerts, clean-burst misses.
    pub violations: Vec<String>,
}

/// Check the invariants CI gates on: a quiet sky must emit zero false
/// alerts and a clean on-axis burst must always be detected, at every
/// swept background scale and threshold.
pub fn smoke_verdict(report: &MatrixReport) -> SmokeVerdict {
    let mut violations = Vec::new();
    for c in &report.cells {
        if c.scenario == "quiet" && c.false_alerts > 0 {
            violations.push(format!(
                "{}: {} false alerts on a quiet sky",
                c.id, c.false_alerts
            ));
        }
        if c.scenario == "clean-burst" && c.missed > 0 {
            violations.push(format!("{}: clean burst missed", c.id));
        }
    }
    SmokeVerdict { violations }
}

/// Run the whole campaign. Returns the report plus rendered forensics
/// for every cell that missed a burst or fired falsely (the root-cause
/// companion to the scored table).
pub fn run_matrix(models: &TrainedModels, config: &MatrixConfig) -> (MatrixReport, String) {
    let catalog = scenario_catalog(config.duration_s);
    let specs: Vec<&ScenarioSpec> = catalog
        .iter()
        .filter(|s| config.scenarios.is_empty() || config.scenarios.iter().any(|n| n == s.name))
        .collect();
    if let Some(dir) = &config.ndjson_dir {
        std::fs::create_dir_all(dir).expect("create NDJSON directory");
    }

    let mut cells = Vec::new();
    let mut forensics = String::new();
    for spec in &specs {
        for &scale in &config.background_scales {
            for &sigma in &config.threshold_sigmas {
                let seed = cell_seed(config.seed, spec.name, scale, sigma);
                let outcome = run_cell(models, spec, config.duration_s, scale, sigma, seed);
                eprintln!(
                    "cell {:<32} det {}/{} false {} ({} decisions)",
                    outcome.report.id,
                    outcome.report.detected,
                    outcome.report.n_truth,
                    outcome.report.false_alerts,
                    outcome.report.decisions_recorded,
                );
                if let Some(dir) = &config.ndjson_dir {
                    let fname = outcome.report.id.replace('/', "_") + ".ndjson";
                    std::fs::write(dir.join(fname), &outcome.ndjson)
                        .expect("write per-cell NDJSON");
                }
                if outcome.report.missed > 0 || outcome.report.false_alerts > 0 {
                    forensics.push_str(&format!("\n=== cell {} ===\n", outcome.report.id));
                    forensics.push_str(&render_forensics(&outcome.decisions));
                }
                cells.push(outcome.report);
            }
        }
    }

    let report = MatrixReport {
        schema: MATRIX_SCHEMA,
        description: format!(
            "trigger robustness matrix: {} scenarios x {:?} background x {:?} sigma, \
             {}s cells; regenerate with `cargo run --release -p adapt-bench --bin bench_matrix`",
            specs.len(),
            config.background_scales,
            config.threshold_sigmas,
            config.duration_s
        ),
        env: EnvReport::capture(),
        duration_s: config.duration_s,
        seed: config.seed,
        scenario_kinds: specs.len(),
        background_scales: config.background_scales.clone(),
        threshold_sigmas: config.threshold_sigmas.clone(),
        cells,
    };
    (report, forensics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_required_grid() {
        let catalog = scenario_catalog(200.0);
        assert!(catalog.len() >= 6, "matrix needs >= 6 scenario kinds");
        let kinds: Vec<&str> = catalog.iter().map(|s| s.name).collect();
        for required in ["quiet", "clean-burst", "occultation-dip", "dead-time"] {
            assert!(kinds.contains(&required), "missing {required}");
        }
        // every non-quiet scenario carries ground truth or a rate stressor
        for spec in &catalog {
            if spec.name == "quiet" {
                assert!(spec.truth_onsets_s().is_empty());
            } else {
                assert!(
                    !spec.truth_onsets_s().is_empty() || !spec.scenario.is_quiet(),
                    "{} is inert",
                    spec.name
                );
            }
        }
        // back-to-back expands to two truth onsets through the scenario
        let b2b = catalog
            .iter()
            .find(|s| s.name == "back-to-back-bursts")
            .unwrap();
        assert_eq!(b2b.truth_onsets_s().len(), 2);
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let a = cell_seed(1, "quiet", 1.0, 7.0);
        assert_eq!(a, cell_seed(1, "quiet", 1.0, 7.0));
        assert_ne!(a, cell_seed(1, "quiet", 3.0, 7.0));
        assert_ne!(a, cell_seed(1, "quiet", 1.0, 9.0));
        assert_ne!(a, cell_seed(1, "saa-step", 1.0, 7.0));
        assert_ne!(a, cell_seed(2, "quiet", 1.0, 7.0));
    }

    #[test]
    fn smoke_verdict_flags_the_gated_invariants() {
        let mk = |scenario: &str, false_alerts: usize, missed: usize| CellReport {
            id: format!("{scenario}/x1/t7"),
            scenario: scenario.into(),
            components: vec![],
            background_scale: 1.0,
            threshold_sigma: 7.0,
            seed: 0,
            duration_s: 120.0,
            n_truth: 1,
            n_alerts: 1,
            detected: 1 - missed,
            missed,
            false_alerts,
            detection_efficiency: (1 - missed) as f64,
            false_alerts_per_hour: false_alerts as f64 * 30.0,
            alert_latency_mean_s: None,
            mean_containment_deg: None,
            events_ingested: 1000,
            decisions_recorded: 10,
        };
        let report = MatrixReport {
            schema: MATRIX_SCHEMA,
            description: String::new(),
            env: EnvReport::capture(),
            duration_s: 120.0,
            seed: 0,
            scenario_kinds: 2,
            background_scales: vec![1.0],
            threshold_sigmas: vec![7.0],
            cells: vec![
                mk("quiet", 1, 0),
                mk("clean-burst", 0, 1),
                mk("saa-step", 2, 1),
            ],
        };
        let verdict = smoke_verdict(&report);
        assert_eq!(verdict.violations.len(), 2, "{:?}", verdict.violations);
        assert!(verdict.violations[0].contains("quiet"));
        assert!(verdict.violations[1].contains("clean burst missed"));
        // hostile cells may miss or fire falsely without failing smoke
        let tables = report.render_tables();
        assert!(tables.contains("saa-step"));
    }
}
