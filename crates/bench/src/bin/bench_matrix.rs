//! Trigger robustness matrix benchmark: hostile-sky scenarios ×
//! background scales × trigger thresholds through the flight runtime,
//! written to `BENCH_matrix.json` (checked into the repo root).
//!
//! Every cell is scored against its ground-truth injections (detection
//! efficiency, false-alert rate, onset→trigger latency, containment),
//! and cells that missed a burst or fired falsely print per-decision
//! forensics. Knobs: `ADAPT_BENCH_MATRIX_OUT` overrides the output
//! path; `ADAPT_MATRIX_DURATION_S` the per-cell stream length;
//! `ADAPT_MATRIX_SMOKE=1` selects the CI smoke grid (and exits nonzero
//! on a quiet-cell false alert or a missed clean burst);
//! `ADAPT_MATRIX_NDJSON_DIR` captures per-cell forensics NDJSON.

use adapt_bench::{existing_schema, smoke_verdict, MatrixConfig, MATRIX_SCHEMA};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::var("ADAPT_MATRIX_SMOKE").map(|v| v == "1") == Ok(true);
    let mut config = if smoke {
        MatrixConfig::smoke()
    } else {
        MatrixConfig::default()
    };
    if let Some(d) = std::env::var("ADAPT_MATRIX_DURATION_S")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        config.duration_s = d;
    }
    config.ndjson_dir = std::env::var("ADAPT_MATRIX_NDJSON_DIR")
        .ok()
        .map(PathBuf::from);

    let models = adapt_bench::shared_models();
    let (report, forensics) = adapt_bench::run_matrix(&models, &config);

    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    let path =
        std::env::var("ADAPT_BENCH_MATRIX_OUT").unwrap_or_else(|_| "BENCH_matrix.json".into());
    if let Some(found) = existing_schema(&path) {
        assert!(
            found <= MATRIX_SCHEMA,
            "{path} was written by schema {found} but this binary writes schema \
             {MATRIX_SCHEMA}; rebuild from the current tree instead of overwriting"
        );
    }
    std::fs::write(&path, text).expect("write benchmark report");

    println!("{}", report.render_tables());
    if !forensics.is_empty() {
        println!("{forensics}");
    }
    println!(
        "{} cells ({} scenarios x {:?} background x {:?} sigma); report written to {path}",
        report.cells.len(),
        report.scenario_kinds,
        report.background_scales,
        report.threshold_sigmas
    );

    if smoke {
        let verdict = smoke_verdict(&report);
        if !verdict.violations.is_empty() {
            eprintln!("smoke violations:");
            for v in &verdict.violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        println!("smoke grid clean: quiet sky silent, clean burst detected");
    }
}
