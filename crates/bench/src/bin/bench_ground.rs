//! Multi-tenant ground-service benchmark: hundreds of concurrent flight
//! streams over one work-stealing localization pool, plus alert fan-out
//! latency across subscriber population sizes.
//!
//! Replays an `ADAPT_GROUND_STREAMS`-stream synthetic fleet (default
//! 128, one burst per stream) through `adapt_ground::GroundService` and
//! writes `BENCH_ground.json` (checked into the repo root): aggregate
//! realtime factor, sustained events/sec across all tenants, scheduler
//! epoch latency p50/p99 vs the per-epoch deadline, pool steal counts,
//! and per-population fan-out publish p50/p99 measured by replaying the
//! produced alerts against synthetic subscriber populations.
//!
//! The service run carries the full observability stack the production
//! path would: a recording flight recorder (causal trace spans), a live
//! snapshot observer, and an in-run subscriber population
//! (`ADAPT_GROUND_SUBSCRIBERS`, default 10000) so every alert's
//! trigger-open → fan-out-publish wall latency is measured from its own
//! span tree (`alert_e2e_p50_ms`/`alert_e2e_p99_ms`, gated by
//! bench_gate). The realtime factors therefore answer the honest
//! question: what does the machine sustain *with* snapshots enabled.
//!
//! Knobs: `ADAPT_BENCH_GROUND_OUT` overrides the output path;
//! `ADAPT_GROUND_STREAMS` the fleet size; `ADAPT_GROUND_DURATION_S` the
//! per-stream simulated length; `ADAPT_GROUND_WORKERS` /
//! `ADAPT_GROUND_SHARDS` the pool geometry; `ADAPT_GROUND_FANOUT_POPS`
//! a comma-separated list of subscriber population sizes (default
//! `10000,100000`; add `1000000` to exercise the 1M tier).

use adapt_bench::{existing_schema, EnvReport};
use adapt_ground::{synth_fleet, GroundConfig, GroundService, SubscriberPopulation};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Report schema version (see `existing_schema` for the downgrade guard).
/// Version 2 added the in-run subscriber population and the span-derived
/// `alert_e2e_*` end-to-end alert latencies.
const GROUND_SCHEMA: u64 = 2;

#[derive(Serialize)]
struct FanoutRow {
    subscribers: usize,
    /// Alerts replayed through `SubscriberPopulation::publish`.
    publishes: usize,
    matched: u64,
    delivered: u64,
    shed: u64,
    publish_p50_us: f64,
    publish_p99_us: f64,
}

#[derive(Serialize)]
struct GroundBenchReport {
    schema: u64,
    description: String,
    env: EnvReport,
    streams: usize,
    duration_s: f64,
    workers: usize,
    ingest_shards: usize,
    deadline_ms: f64,
    events_ingested: u64,
    /// Structurally zero: ground ingest is pull-based (see DESIGN.md).
    events_dropped: u64,
    epochs_dispatched: u64,
    alerts: usize,
    /// Localization count per degradation level (full-ml, reduced,
    /// classical, coarse).
    per_level: [u64; 4],
    pool_tasks_pushed: u64,
    pool_tasks_stolen: u64,
    pool_max_pending: usize,
    wall_s: f64,
    sustained_events_per_s: f64,
    /// Total simulated stream-seconds served per wall-clock second; the
    /// service keeps up with the whole fleet in real time iff > 1.
    aggregate_realtime_factor: f64,
    epoch_latency_p50_ms: Option<f64>,
    epoch_latency_p99_ms: Option<f64>,
    deadline_met: bool,
    /// In-run subscriber population behind the `alert_e2e_*` latencies.
    subscribers: usize,
    /// Trigger-open → fan-out-publish wall latency, reconstructed from
    /// each alert's causal span tree.
    alert_e2e_p50_ms: Option<f64>,
    alert_e2e_p99_ms: Option<f64>,
    /// Live-observer activity during the run (the snapshot overhead the
    /// realtime factors already include).
    live_snapshots: u64,
    slo_breaches: u64,
    fanout: Vec<FanoutRow>,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fanout_populations() -> Vec<usize> {
    std::env::var("ADAPT_GROUND_FANOUT_POPS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![10_000, 100_000])
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replay the service's alerts against a fresh synthetic population,
/// timing each `publish` (filter match + mailbox delivery). Nothing
/// drains the mailboxes, so capacity overflow exercises the shedding
/// path exactly as a slow consumer would.
fn fanout_row(alerts: &[Arc<adapt_ground::GroundAlert>], subscribers: usize) -> FanoutRow {
    let population = SubscriberPopulation::synth(subscribers, 0xFA0 ^ subscribers as u64, 16);
    let mut matched = 0u64;
    let mut latencies_us: Vec<f64> = alerts
        .iter()
        .map(|alert| {
            let t0 = Instant::now();
            let outcome = population.publish(alert);
            let us = t0.elapsed().as_secs_f64() * 1e6;
            matched += outcome.matched;
            us
        })
        .collect();
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let stats = population.stats();
    FanoutRow {
        subscribers,
        publishes: alerts.len(),
        matched,
        delivered: stats.delivered,
        shed: stats.shed,
        publish_p50_us: percentile(&latencies_us, 0.5),
        publish_p99_us: percentile(&latencies_us, 0.99),
    }
}

fn main() {
    let models = adapt_bench::shared_models();
    let streams = env_usize("ADAPT_GROUND_STREAMS", 128);
    let duration_s = env_f64("ADAPT_GROUND_DURATION_S", 60.0);
    let config = GroundConfig {
        workers: env_usize("ADAPT_GROUND_WORKERS", 4),
        ingest_shards: env_usize("ADAPT_GROUND_SHARDS", 4),
        ..GroundConfig::default()
    };
    let deadline_ms = config.deadline_ms;
    let workers = config.workers;
    let ingest_shards = config.ingest_shards;

    let fleet = synth_fleet(streams, duration_s, 0x6B0);

    // the production observability stack rides along: trace spans via
    // the recorder, periodic snapshots via the live observer, and a
    // live subscriber population fanning out inside the workers
    let recorder = adapt_telemetry::FlightRecorder::new();
    recorder.begin_trial("bench-ground", 0x6B0);
    let slo = adapt_telemetry::SloConfig {
        deadline_ms,
        ..Default::default()
    };
    let live = adapt_telemetry::LiveObserver::new(5.0, slo);
    let subscribers = env_usize("ADAPT_GROUND_SUBSCRIBERS", 10_000);
    let population = SubscriberPopulation::synth(subscribers, 0xFA0 ^ subscribers as u64, 16);
    let report = GroundService::new(&models, config)
        .with_recorder(&recorder)
        .with_live(&live)
        .run(fleet, Some(&population));
    live.finish(duration_s);

    let spans = recorder.trace_records();
    let mut e2e: Vec<f64> = adapt_telemetry::trace_ids(&spans)
        .into_iter()
        .filter(|id| {
            // only traces that reached fan-out measure the full
            // trigger-open -> publish path
            spans
                .iter()
                .any(|s| s.trace_id == *id && s.span == "fanout")
        })
        .filter_map(|id| adapt_telemetry::end_to_end_ms(&spans, &id))
        .collect();
    e2e.sort_by(|a, b| a.total_cmp(b));
    let e2e_p50 = (!e2e.is_empty()).then(|| percentile(&e2e, 0.5));
    let e2e_p99 = (!e2e.is_empty()).then(|| percentile(&e2e, 0.99));

    let p50 = report.latency_percentile_ms(0.5);
    let p99 = report.latency_percentile_ms(0.99);
    let shared: Vec<Arc<adapt_ground::GroundAlert>> =
        report.alerts.iter().cloned().map(Arc::new).collect();
    let fanout: Vec<FanoutRow> = fanout_populations()
        .into_iter()
        .map(|n| fanout_row(&shared, n))
        .collect();

    let out = GroundBenchReport {
        schema: GROUND_SCHEMA,
        description: format!(
            "{streams}-stream multi-tenant ground service over a {workers}-worker \
             work-stealing pool; regenerate with \
             `cargo run --release -p adapt-bench --bin bench_ground`"
        ),
        env: EnvReport::capture(),
        streams: report.streams,
        duration_s,
        workers,
        ingest_shards,
        deadline_ms,
        events_ingested: report.events_ingested,
        events_dropped: report.events_dropped,
        epochs_dispatched: report.epochs_dispatched,
        alerts: report.alerts.len(),
        per_level: report.per_level,
        pool_tasks_pushed: report.pool.pushed,
        pool_tasks_stolen: report.pool.stolen,
        pool_max_pending: report.pool.max_pending,
        wall_s: report.wall_s,
        sustained_events_per_s: report.events_ingested as f64 / report.wall_s.max(1e-9),
        aggregate_realtime_factor: report.aggregate_realtime_factor,
        epoch_latency_p50_ms: p50,
        epoch_latency_p99_ms: p99,
        deadline_met: p99.map(|v| v <= deadline_ms).unwrap_or(true),
        subscribers,
        alert_e2e_p50_ms: e2e_p50,
        alert_e2e_p99_ms: e2e_p99,
        live_snapshots: live.snapshots_taken(),
        slo_breaches: live.breaches(),
        fanout,
    };

    let text = serde_json::to_string_pretty(&out).expect("report serializes");
    let path =
        std::env::var("ADAPT_BENCH_GROUND_OUT").unwrap_or_else(|_| "BENCH_ground.json".into());
    if let Some(found) = existing_schema(&path) {
        assert!(
            found <= GROUND_SCHEMA,
            "{path} was written by schema {found} but this binary writes schema \
             {GROUND_SCHEMA}; rebuild from the current tree instead of overwriting"
        );
    }
    std::fs::write(&path, text).expect("write benchmark report");
    println!(
        "{} streams x {duration_s:.0} simulated s: {} alerts, {} epochs, \
         {:.1}x aggregate realtime ({:.0} events/s sustained), epoch p99 {} vs \
         {deadline_ms:.0} ms deadline, {} steals; report written to {path}",
        out.streams,
        out.alerts,
        out.epochs_dispatched,
        out.aggregate_realtime_factor,
        out.sustained_events_per_s,
        p99.map(|v| format!("{v:.1} ms"))
            .unwrap_or_else(|| "n/a".into()),
        out.pool_tasks_stolen,
    );
    println!(
        "end-to-end (trigger open -> fan-out publish, {subscribers} subscribers): \
         p50 {}, p99 {} from {} span tree(s); {} live snapshot(s), {} SLO breach(es)",
        e2e_p50
            .map(|v| format!("{v:.1} ms"))
            .unwrap_or_else(|| "n/a".into()),
        e2e_p99
            .map(|v| format!("{v:.1} ms"))
            .unwrap_or_else(|| "n/a".into()),
        e2e.len(),
        out.live_snapshots,
        out.slo_breaches,
    );
    for row in &out.fanout {
        println!(
            "fan-out to {:>7} subscribers: publish p50 {:.1} us, p99 {:.1} us \
             ({} delivered, {} shed)",
            row.subscribers, row.publish_p50_us, row.publish_p99_us, row.delivered, row.shed
        );
    }
}
