//! Streaming flight-runtime benchmark: sustained ingest throughput and
//! end-to-end alert latency under load.
//!
//! Replays a 15-simulated-minute float segment of the checkout profile
//! at 4x nominal background with three injected bursts through
//! `adapt_onboard::FlightRuntime`, and writes `BENCH_stream.json`
//! (checked into the repo root): sustained events/sec, alert count,
//! p50/p99 alert latency vs the configured deadline, queue high-water
//! marks, and drop counts.
//!
//! Knobs: `ADAPT_BENCH_STREAM_OUT` overrides the output path;
//! `ADAPT_STREAM_DURATION_S` the simulated stream length;
//! `ADAPT_STREAM_SCALE` the background multiplier.

use adapt_bench::{existing_schema, EnvReport};
use adapt_onboard::{FlightRuntime, RuntimeConfig, FLIGHT_NOMINAL_FLUENCE};
use adapt_sim::{FlightProfile, GrbConfig, StreamConfig, StreamingSource};
use serde::Serialize;

/// Report schema version. 2 added the `env` provenance block (git rev,
/// CPU model, kernel ISA + features) shared with `BENCH_pipeline.json`.
const STREAM_SCHEMA: u64 = 2;

#[derive(Serialize)]
struct AlertRow {
    t_trigger_s: f64,
    mode: &'static str,
    latency_ms: f64,
    containment_radius_deg: f64,
}

#[derive(Serialize)]
struct StreamReport {
    schema: u64,
    description: String,
    /// Measurement provenance; `env.kernel_isa` records which
    /// inference/skymap kernels the streaming latencies actually ran on.
    env: EnvReport,
    duration_s: f64,
    background_scale: f64,
    deadline_ms: f64,
    incident_background: u64,
    incident_grb_photons: u64,
    events_ingested: u64,
    events_dropped: u64,
    wall_s: f64,
    sustained_events_per_s: f64,
    realtime_factor: f64,
    alerts: Vec<AlertRow>,
    alert_latency_p50_ms: Option<f64>,
    alert_latency_p99_ms: Option<f64>,
    deadline_met: bool,
    ingest_max_depth: usize,
    epoch_max_depth: usize,
    degradation_transitions: usize,
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let models = adapt_bench::shared_models();
    let duration_s = env_f64("ADAPT_STREAM_DURATION_S", 900.0);
    let scale = env_f64("ADAPT_STREAM_SCALE", 4.0);

    // Float segment of the checkout profile, three bursts spread over
    // the stream at different fluences and angles.
    let mut stream = StreamConfig::new(FlightProfile::checkout_2h(), duration_s)
        .with_burst(0.2 * duration_s, GrbConfig::new(1.5, 0.0))
        .with_burst(0.5 * duration_s, GrbConfig::new(1.0, 30.0))
        .with_burst(0.8 * duration_s, GrbConfig::new(2.0, 15.0));
    stream.start_h = 1.5;
    stream.background.particle_fluence = FLIGHT_NOMINAL_FLUENCE;
    stream.background_scale = scale;

    let config = RuntimeConfig::default();
    let deadline_ms = config.deadline_ms;
    let runtime = FlightRuntime::new(&models, config);
    let report = runtime.run(StreamingSource::new(stream, 0xF117));

    let p50 = report.latency_percentile_ms(0.5);
    let p99 = report.latency_percentile_ms(0.99);
    let out = StreamReport {
        schema: STREAM_SCHEMA,
        description: format!(
            "streaming flight runtime at {scale}x nominal background; \
             regenerate with `cargo run --release -p adapt-bench --bin bench_stream`"
        ),
        env: EnvReport::capture(),
        duration_s,
        background_scale: scale,
        deadline_ms,
        incident_background: report.stream_stats.n_background_incident,
        incident_grb_photons: report.stream_stats.n_grb_incident,
        events_ingested: report.ingest_stats.pushed,
        events_dropped: report.ingest_stats.dropped,
        wall_s: report.wall_s,
        sustained_events_per_s: report.sustained_events_per_s,
        realtime_factor: duration_s / report.wall_s.max(1e-9),
        alerts: report
            .alerts
            .iter()
            .map(|a| AlertRow {
                t_trigger_s: a.t_trigger_s,
                mode: a.mode.name(),
                latency_ms: a.latency_ms,
                containment_radius_deg: a.containment_radius_deg,
            })
            .collect(),
        alert_latency_p50_ms: p50,
        alert_latency_p99_ms: p99,
        deadline_met: p99.map(|v| v <= deadline_ms).unwrap_or(true),
        ingest_max_depth: report.ingest_stats.max_depth,
        epoch_max_depth: report.epoch_stats.max_depth,
        degradation_transitions: report.transitions.len(),
    };

    let text = serde_json::to_string_pretty(&out).expect("report serializes");
    let path =
        std::env::var("ADAPT_BENCH_STREAM_OUT").unwrap_or_else(|_| "BENCH_stream.json".into());
    if let Some(found) = existing_schema(&path) {
        assert!(
            found <= STREAM_SCHEMA,
            "{path} was written by schema {found} but this binary writes schema \
             {STREAM_SCHEMA}; rebuild from the current tree instead of overwriting"
        );
    }
    std::fs::write(&path, text).expect("write benchmark report");
    println!(
        "{} alerts over {duration_s:.0} simulated s at {scale}x background \
         ({:.0} events/s sustained, {:.1}x realtime); p99 alert latency {} vs {deadline_ms:.0} ms \
         deadline; report written to {path}",
        out.alerts.len(),
        out.sustained_events_per_s,
        out.realtime_factor,
        p99.map(|v| format!("{v:.1} ms"))
            .unwrap_or_else(|| "n/a".into()),
    );
}
