//! Regenerates the stage-timing tables (paper Tables I/II) on this host.
//! Scale repetitions with `ADAPT_TIMING_REPS` (paper: 300).
fn main() {
    let models = adapt_bench::shared_models();
    println!(
        "{}",
        adapt_bench::run_table12(&models, adapt_bench::timing_reps())
    );
}
