//! Regenerates the stage-timing tables (paper Tables I/II) on this host.
//! Scale repetitions with `ADAPT_TIMING_REPS` (paper: 300). Pass
//! `--paper` for the paper's original two-column (mean + range) layout;
//! the default rendering adds p50/p99 columns from the stage histograms.
fn main() {
    let paper_layout = std::env::args().any(|a| a == "--paper");
    let models = adapt_bench::shared_models();
    println!(
        "{}",
        adapt_bench::run_table12_with(&models, adapt_bench::timing_reps(), paper_layout)
    );
}
