//! Burst-trigger (detection) study: efficiency vs fluence.
fn main() {
    let spec = adapt_core::TrialSpec::from_env();
    println!("{}", adapt_bench::run_detection(spec));
}
