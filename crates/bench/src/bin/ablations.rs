//! Ablation study over the pipeline's design choices (see DESIGN.md).
fn main() {
    let models = adapt_bench::shared_models();
    let spec = adapt_core::TrialSpec::from_env();
    println!("{}", adapt_bench::run_ablations(&models, spec));
}
