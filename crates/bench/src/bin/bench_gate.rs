//! CI regression gate over the checked-in benchmark reports:
//! `BENCH_pipeline.json`, `BENCH_stream.json`, `BENCH_ground.json`, and
//! `BENCH_matrix.json`.
//!
//! Compares a freshly measured candidate report against the committed
//! baseline and fails (exit 1) when any gated metric regressed by more
//! than the tolerance. The report kind is auto-detected from its shape,
//! and each kind gates what is portable for it:
//!
//! * **pipeline** — kernel *speedup ratios* (portable-vs-SIMD and
//!   reference-vs-plan on the *same* host in the *same* run), tolerance
//!   15% (`ADAPT_BENCH_GATE_TOLERANCE`). Absolute microseconds shift
//!   with CI hardware, but a vectorized kernel that stops being faster
//!   than its portable twin has regressed no matter the machine.
//! * **stream** — the single-stream realtime factor and the deadline
//!   headroom (deadline / p99 alert latency). These are wall-clock
//!   numbers, so the tolerance is the looser wall tolerance (default
//!   50%, `ADAPT_BENCH_WALL_TOLERANCE`); the gate catches collapses,
//!   not noise.
//! * **ground** — the aggregate realtime factor across the fleet, the
//!   epoch deadline headroom, and the inverse fan-out publish p99 per
//!   subscriber population (wall tolerance). Additionally the candidate
//!   must report `events_dropped == 0`: ground ingest is pull-based and
//!   structurally lossless, so any drop is a correctness bug, not a
//!   performance number — the override does not apply.
//! * **matrix** — the trigger robustness matrix. Per-cell detection
//!   efficiency may *never* drop below the baseline (cells are
//!   seed-deterministic, so any drop is a real behavior change — the
//!   override does not apply), the quiet cells must stay free of false
//!   alerts and the clean-burst cells must stay detected (candidate-only
//!   contracts), and per-cell false-alert rates gate at the wall
//!   tolerance.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json>   # compare two reports
//! bench_gate --self-test <baseline.json>        # prove the gate works
//! ```
//!
//! `--self-test` checks both gate arms with synthetic candidates derived
//! from the baseline: every gated metric slowed beyond its tolerance
//! must FAIL, and the baseline compared against itself must PASS.
//!
//! Overrides, for intentional re-baselines only:
//!
//! * `ADAPT_BENCH_ALLOW_REGRESSION=1` — report regressions but exit 0.
//!   Use when landing a change that knowingly trades speed for
//!   something else; commit the regenerated baseline in the same PR.
//! * `ADAPT_BENCH_GATE_TOLERANCE` — ratio-metric tolerance as a
//!   fraction (default `0.15`).
//! * `ADAPT_BENCH_WALL_TOLERANCE` — wall-clock-metric tolerance as a
//!   fraction (default `0.50`).
//!
//! The gate also hard-fails (no override) if a pipeline candidate's
//! INT8 kernel reports a nonzero divergence from the portable plan:
//! bit-exactness is a correctness contract, not a performance number.

use serde::Value;

/// A gated metric: JSON path through the report plus the ratio found.
struct Gated {
    path: String,
    baseline: f64,
    candidate: f64,
}

/// Which benchmark report a JSON file is, detected from its shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Pipeline,
    Stream,
    Ground,
    Matrix,
}

impl Kind {
    fn detect(report: &Value) -> Kind {
        if report.get("cells").is_some() {
            Kind::Matrix
        } else if report.get("aggregate_realtime_factor").is_some() {
            Kind::Ground
        } else if report.get("realtime_factor").is_some() {
            Kind::Stream
        } else {
            Kind::Pipeline
        }
    }

    fn name(self) -> &'static str {
        match self {
            Kind::Pipeline => "pipeline",
            Kind::Stream => "stream",
            Kind::Ground => "ground",
            Kind::Matrix => "matrix",
        }
    }
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(n) => Some(*n as f64),
        Value::UInt(n) => Some(*n as f64),
        Value::Float(x) => Some(*x),
        _ => None,
    }
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read benchmark report {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

/// The top-level pipeline sections whose `speedup` field is gated.
const GATED_SECTIONS: &[&str] = &[
    "background_net_inference_256_rings",
    "int8_background_net_inference_256_rings",
    "skymap_12k_pixels_600_rings",
];

/// Wall-clock metrics gated on stream/ground reports: the key and
/// whether higher is better (`false` means the gate inverts the value,
/// so a growing latency reads as a shrinking gated metric).
const STREAM_WALL_METRICS: &[(&str, bool)] =
    &[("realtime_factor", true), ("alert_latency_p99_ms", false)];
const GROUND_WALL_METRICS: &[(&str, bool)] = &[
    ("aggregate_realtime_factor", true),
    ("sustained_events_per_s", true),
    ("epoch_latency_p99_ms", false),
    ("alert_e2e_p99_ms", false),
];

/// Collect every gated pipeline speedup: the three section-level ratios
/// plus one per kernel row (matched by kernel name).
fn gated_speedups(report: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for section in GATED_SECTIONS {
        if let Some(s) = report.get(section).and_then(|s| s.get("speedup")) {
            out.push((format!("{section}.speedup"), num(s).unwrap_or(f64::NAN)));
        }
    }
    if let Some(kernels) = report.get("kernels").and_then(|k| k.as_arr()) {
        for k in kernels {
            let name = k
                .get("kernel")
                .and_then(|n| n.as_str())
                .unwrap_or("<unnamed>");
            if let Some(s) = k.get("speedup").and_then(num) {
                out.push((format!("kernels[{name}].speedup"), s));
            }
        }
    }
    out
}

/// Collect the gated wall-clock metrics of a stream/ground report.
/// Lower-is-better latencies are inverted so every gated value is
/// higher-is-better and one regression rule covers all kinds.
fn gated_wall_metrics(report: &Value, kind: Kind) -> Vec<(String, f64)> {
    let metrics = match kind {
        Kind::Stream => STREAM_WALL_METRICS,
        Kind::Ground => GROUND_WALL_METRICS,
        Kind::Matrix => return gated_matrix_metrics(report),
        Kind::Pipeline => return Vec::new(),
    };
    let mut out = Vec::new();
    for (key, higher_better) in metrics {
        // Option<f64> latencies serialize to null when no alerts fired;
        // skip rather than gate a metric that does not exist
        if let Some(x) = report.get(key).and_then(num) {
            let (path, value) = if *higher_better {
                (key.to_string(), x)
            } else {
                (format!("1/{key}"), 1.0 / x.max(1e-12))
            };
            out.push((path, value));
        }
    }
    if let Some(rows) = report.get("fanout").and_then(|f| f.as_arr()) {
        for row in rows {
            let subs = row.get("subscribers").and_then(num).unwrap_or(f64::NAN);
            if let Some(p99) = row.get("publish_p99_us").and_then(num) {
                out.push((
                    format!("1/fanout[{subs:.0}].publish_p99_us"),
                    1.0 / p99.max(1e-12),
                ));
            }
        }
    }
    out
}

/// Per-cell matrix metrics, keyed by the stable cell id. False-alert
/// rates are mapped to the higher-is-better `1/(1+rate)` so the shared
/// regression rule applies; detection efficiency is gated here *and*
/// re-checked as a non-overridable contract in [`run_gate`].
fn gated_matrix_metrics(report: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(cells) = report.get("cells").and_then(|c| c.as_arr()) else {
        return out;
    };
    for cell in cells {
        let id = cell.get("id").and_then(|v| v.as_str()).unwrap_or("<cell>");
        if let Some(eff) = cell.get("detection_efficiency").and_then(num) {
            out.push((format!("cells[{id}].detection_efficiency"), eff));
        }
        if let Some(fa) = cell.get("false_alerts_per_hour").and_then(num) {
            out.push((
                format!("cells[{id}].1/(1+false_alerts_per_hour)"),
                1.0 / (1.0 + fa),
            ));
        }
    }
    out
}

/// Every gated metric of a report, dispatched on its kind.
fn gated_metrics(report: &Value, kind: Kind) -> Vec<(String, f64)> {
    match kind {
        Kind::Pipeline => gated_speedups(report),
        Kind::Stream | Kind::Ground | Kind::Matrix => gated_wall_metrics(report, kind),
    }
}

/// Compare candidate against baseline; returns the regressions found.
fn regressions(baseline: &Value, candidate: &Value, kind: Kind, tolerance: f64) -> Vec<Gated> {
    let base: Vec<(String, f64)> = gated_metrics(baseline, kind);
    let cand: Vec<(String, f64)> = gated_metrics(candidate, kind);
    let mut out = Vec::new();
    for (path, b) in &base {
        let Some((_, c)) = cand.iter().find(|(p, _)| p == path) else {
            // a metric that vanished from the candidate is a regression
            // of the report itself — surface it as one
            out.push(Gated {
                path: format!("{path} (missing from candidate)"),
                baseline: *b,
                candidate: f64::NAN,
            });
            continue;
        };
        if !b.is_finite() || *b <= 0.0 {
            continue; // nothing meaningful to gate against
        }
        // a NaN candidate (unparseable number) must also count as a
        // regression, hence the explicit is_nan arm
        if *c < b / (1.0 + tolerance) || c.is_nan() {
            out.push(Gated {
                path: path.clone(),
                baseline: *b,
                candidate: *c,
            });
        }
    }
    out
}

/// The INT8 kernel's bit-exactness contract: any row whose name starts
/// with `int8` must report zero divergence from the portable plan.
fn int8_exactness_violation(candidate: &Value) -> Option<String> {
    let kernels = candidate.get("kernels").and_then(|k| k.as_arr())?;
    for k in kernels {
        let name = k.get("kernel").and_then(|n| n.as_str()).unwrap_or("");
        if !name.starts_with("int8") {
            continue;
        }
        let diff = k.get("max_abs_diff_vs_portable").and_then(num)?;
        if diff != 0.0 {
            return Some(format!("{name}: max_abs_diff_vs_portable = {diff:e}"));
        }
    }
    None
}

/// The matrix's candidate-only invariants, mirroring the smoke gate: a
/// quiet sky never fires, a clean on-axis burst is never missed.
fn matrix_invariant_violation(candidate: &Value) -> Option<String> {
    let cells = candidate.get("cells").and_then(|c| c.as_arr())?;
    for cell in cells {
        let scenario = cell.get("scenario").and_then(|v| v.as_str()).unwrap_or("");
        let id = cell.get("id").and_then(|v| v.as_str()).unwrap_or("<cell>");
        let fa = cell.get("false_alerts").and_then(num).unwrap_or(0.0);
        let missed = cell.get("missed").and_then(num).unwrap_or(0.0);
        if scenario == "quiet" && fa != 0.0 {
            return Some(format!("{id}: {fa:.0} false alerts on a quiet sky"));
        }
        if scenario == "clean-burst" && missed != 0.0 {
            return Some(format!("{id}: clean burst missed"));
        }
    }
    None
}

/// Detection efficiency may never drop below baseline: cells are
/// seed-deterministic, so any drop is a real behavioral change in the
/// trigger or scenario layer, not measurement noise.
fn matrix_detection_violation(baseline: &Value, candidate: &Value) -> Option<String> {
    let base_cells = baseline.get("cells").and_then(|c| c.as_arr())?;
    let cand_cells = candidate.get("cells").and_then(|c| c.as_arr())?;
    for cell in base_cells {
        let id = cell.get("id").and_then(|v| v.as_str())?;
        let b = cell.get("detection_efficiency").and_then(num)?;
        let cand = cand_cells
            .iter()
            .find(|c| c.get("id").and_then(|v| v.as_str()) == Some(id));
        let Some(cand) = cand else {
            return Some(format!("cell {id} vanished from the candidate matrix"));
        };
        let c = cand.get("detection_efficiency").and_then(num)?;
        if c < b - 1e-9 {
            return Some(format!("cell {id}: detection efficiency {b:.3} -> {c:.3}"));
        }
    }
    None
}

/// Non-overridable correctness contracts per report kind.
fn contract_violation(candidate: &Value, kind: Kind) -> Option<String> {
    match kind {
        Kind::Pipeline => {
            int8_exactness_violation(candidate).map(|v| format!("INT8 bit-exactness broken — {v}"))
        }
        Kind::Ground => match candidate.get("events_dropped").and_then(num) {
            Some(dropped) if dropped != 0.0 => Some(format!(
                "ground ingest dropped {dropped:.0} events; pull-based ingest is \
                 structurally lossless, so any drop is a bug"
            )),
            _ => None,
        },
        Kind::Matrix => matrix_invariant_violation(candidate),
        Kind::Stream => None,
    }
}

/// Run one gate comparison, printing the verdict. Returns pass/fail.
fn run_gate(baseline: &Value, candidate: &Value, kind: Kind, tolerance: f64, allow: bool) -> bool {
    if let Some(violation) = contract_violation(candidate, kind) {
        // correctness, not performance: the override does not apply
        eprintln!("GATE FAIL (not overridable): {violation}");
        return false;
    }
    if kind == Kind::Matrix {
        if let Some(violation) = matrix_detection_violation(baseline, candidate) {
            eprintln!("GATE FAIL (not overridable): detection-efficiency regression — {violation}");
            return false;
        }
    }
    let found = regressions(baseline, candidate, kind, tolerance);
    if found.is_empty() {
        println!(
            "bench gate PASS ({}): {} gated metrics within {:.0}% of baseline",
            kind.name(),
            gated_metrics(baseline, kind).len(),
            tolerance * 100.0
        );
        return true;
    }
    for r in &found {
        eprintln!(
            "REGRESSION {}: baseline {:.4} -> candidate {:.4} (floor {:.4})",
            r.path,
            r.baseline,
            r.candidate,
            r.baseline / (1.0 + tolerance)
        );
    }
    if allow {
        eprintln!(
            "bench gate OVERRIDDEN: {} regression(s) allowed by \
             ADAPT_BENCH_ALLOW_REGRESSION=1 — commit a regenerated baseline",
            found.len()
        );
        return true;
    }
    eprintln!(
        "bench gate FAIL ({}): {} of {} gated metrics regressed >{:.0}%. If \
         intentional, regenerate the baseline report on the baseline host and commit \
         it (or set ADAPT_BENCH_ALLOW_REGRESSION=1 for this run).",
        kind.name(),
        found.len(),
        gated_metrics(baseline, kind).len(),
        tolerance * 100.0
    );
    false
}

/// Wall-clock keys `slowed` scales: throughput-like keys are divided by
/// the factor, latency-like keys multiplied, mimicking a uniformly
/// slower run.
const SLOWED_THROUGHPUT_KEYS: &[&str] = &[
    "realtime_factor",
    "aggregate_realtime_factor",
    "sustained_events_per_s",
];
const SLOWED_LATENCY_KEYS: &[&str] = &[
    "alert_latency_p99_ms",
    "epoch_latency_p99_ms",
    "alert_e2e_p99_ms",
    "publish_p99_us",
    "false_alerts_per_hour",
];

/// Matrix keys scaled like throughput (a uniformly "worse" candidate
/// detects less), exercised by the `--self-test` slowdown arm.
const SLOWED_EFFICIENCY_KEYS: &[&str] = &["detection_efficiency"];

/// Deep-copy a report with every gated metric slowed by `factor` — the
/// injected-slowdown candidate for `--self-test`. Pipeline speedups are
/// divided; stream/ground throughput metrics divided and p99 latencies
/// multiplied.
fn slowed(v: &Value, factor: f64, in_gated: bool) -> Value {
    match v {
        Value::Obj(pairs) => Value::Obj(
            pairs
                .iter()
                .map(|(k, val)| {
                    let gated_here =
                        in_gated || GATED_SECTIONS.contains(&k.as_str()) || k == "kernels";
                    if let Some(x) = num(val) {
                        if k == "speedup" && in_gated {
                            return (k.clone(), Value::Float(x / factor));
                        }
                        if SLOWED_THROUGHPUT_KEYS.contains(&k.as_str())
                            || SLOWED_EFFICIENCY_KEYS.contains(&k.as_str())
                        {
                            return (k.clone(), Value::Float(x / factor));
                        }
                        if SLOWED_LATENCY_KEYS.contains(&k.as_str()) {
                            return (k.clone(), Value::Float(x * factor));
                        }
                    }
                    (k.clone(), slowed(val, factor, gated_here))
                })
                .collect(),
        ),
        Value::Arr(items) => {
            Value::Arr(items.iter().map(|i| slowed(i, factor, in_gated)).collect())
        }
        other => other.clone(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ratio_tolerance: f64 = std::env::var("ADAPT_BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let wall_tolerance: f64 = std::env::var("ADAPT_BENCH_WALL_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.50);
    let allow = std::env::var("ADAPT_BENCH_ALLOW_REGRESSION").as_deref() == Ok("1");
    let tolerance_for = |kind: Kind| match kind {
        Kind::Pipeline => ratio_tolerance,
        Kind::Stream | Kind::Ground | Kind::Matrix => wall_tolerance,
    };

    match args.as_slice() {
        [flag, baseline_path] if flag == "--self-test" => {
            let baseline = load(baseline_path);
            let kind = Kind::detect(&baseline);
            let tolerance = tolerance_for(kind);
            // an injected slowdown safely beyond the tolerance
            let factor = (1.0 + tolerance) * 1.1;
            // arm 1: baseline vs itself must pass
            println!(
                "self-test 1/2 ({}): baseline vs itself (must pass)",
                kind.name()
            );
            assert!(
                run_gate(&baseline, &baseline, kind, tolerance, false),
                "self-test failed: gate rejected a baseline identical to itself"
            );
            // arm 2: the injected slowdown on every gated metric must fail
            println!(
                "self-test 2/2 ({}): injected /{factor:.2} slowdown (must fail)",
                kind.name()
            );
            let injected = slowed(&baseline, factor, false);
            assert!(
                !run_gate(&baseline, &injected, kind, tolerance, false),
                "self-test failed: gate accepted an injected regression beyond tolerance"
            );
            println!("bench gate self-test PASS ({})", kind.name());
        }
        [baseline_path, candidate_path] => {
            let baseline = load(baseline_path);
            let candidate = load(candidate_path);
            let kind = Kind::detect(&baseline);
            let candidate_kind = Kind::detect(&candidate);
            if kind != candidate_kind {
                eprintln!(
                    "bench gate FAIL: baseline is a {} report but candidate is a {} report",
                    kind.name(),
                    candidate_kind.name()
                );
                std::process::exit(1);
            }
            if !run_gate(&baseline, &candidate, kind, tolerance_for(kind), allow) {
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!(
                "usage: bench_gate <baseline.json> <candidate.json>\n       \
                 bench_gate --self-test <baseline.json>"
            );
            std::process::exit(2);
        }
    }
}
