//! CI regression gate over the kernel benchmarks in `BENCH_pipeline.json`.
//!
//! Compares a freshly measured candidate report against the committed
//! baseline and fails (exit 1) when any gated *speedup ratio* regressed
//! by more than the tolerance (default 15%). Ratios — portable-vs-SIMD
//! and reference-vs-plan on the *same* host in the *same* run — are what
//! make the gate portable: absolute microseconds shift with CI hardware,
//! but a vectorized kernel that stops being faster than its portable
//! twin has regressed no matter the machine.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json>   # compare two reports
//! bench_gate --self-test <baseline.json>        # prove the gate works
//! ```
//!
//! `--self-test` checks both gate arms with synthetic candidates derived
//! from the baseline: every gated speedup divided by 1.25 (an injected
//! regression beyond 15%) must FAIL, and the baseline compared against
//! itself must PASS.
//!
//! Overrides, for intentional re-baselines only:
//!
//! * `ADAPT_BENCH_ALLOW_REGRESSION=1` — report regressions but exit 0.
//!   Use when landing a change that knowingly trades kernel speed for
//!   something else; commit the regenerated baseline in the same PR.
//! * `ADAPT_BENCH_GATE_TOLERANCE` — regression tolerance as a fraction
//!   (default `0.15`).
//!
//! The gate also hard-fails (no override) if the candidate's INT8 kernel
//! reports a nonzero divergence from the portable plan: bit-exactness is
//! a correctness contract, not a performance number.

use serde::Value;

/// A gated metric: JSON path through the report plus the ratio found.
struct Gated {
    path: String,
    baseline: f64,
    candidate: f64,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(n) => Some(*n as f64),
        Value::UInt(n) => Some(*n as f64),
        Value::Float(x) => Some(*x),
        _ => None,
    }
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read benchmark report {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

/// The top-level sections whose `speedup` field is gated.
const GATED_SECTIONS: &[&str] = &[
    "background_net_inference_256_rings",
    "int8_background_net_inference_256_rings",
    "skymap_12k_pixels_600_rings",
];

/// Collect every gated speedup from a report: the three section-level
/// ratios plus one per kernel row (matched by kernel name).
fn gated_speedups(report: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for section in GATED_SECTIONS {
        if let Some(s) = report.get(section).and_then(|s| s.get("speedup")) {
            out.push((format!("{section}.speedup"), num(s).unwrap_or(f64::NAN)));
        }
    }
    if let Some(kernels) = report.get("kernels").and_then(|k| k.as_arr()) {
        for k in kernels {
            let name = k
                .get("kernel")
                .and_then(|n| n.as_str())
                .unwrap_or("<unnamed>");
            if let Some(s) = k.get("speedup").and_then(num) {
                out.push((format!("kernels[{name}].speedup"), s));
            }
        }
    }
    out
}

/// Compare candidate against baseline; returns the regressions found.
fn regressions(baseline: &Value, candidate: &Value, tolerance: f64) -> Vec<Gated> {
    let base: Vec<(String, f64)> = gated_speedups(baseline);
    let cand: Vec<(String, f64)> = gated_speedups(candidate);
    let mut out = Vec::new();
    for (path, b) in &base {
        let Some((_, c)) = cand.iter().find(|(p, _)| p == path) else {
            // a metric that vanished from the candidate is a regression
            // of the report itself — surface it as one
            out.push(Gated {
                path: format!("{path} (missing from candidate)"),
                baseline: *b,
                candidate: f64::NAN,
            });
            continue;
        };
        if !b.is_finite() || *b <= 0.0 {
            continue; // nothing meaningful to gate against
        }
        // a NaN candidate (unparseable number) must also count as a
        // regression, hence the explicit is_nan arm
        if *c < b / (1.0 + tolerance) || c.is_nan() {
            out.push(Gated {
                path: path.clone(),
                baseline: *b,
                candidate: *c,
            });
        }
    }
    out
}

/// The INT8 kernel's bit-exactness contract: any row whose name starts
/// with `int8` must report zero divergence from the portable plan.
fn int8_exactness_violation(candidate: &Value) -> Option<String> {
    let kernels = candidate.get("kernels").and_then(|k| k.as_arr())?;
    for k in kernels {
        let name = k.get("kernel").and_then(|n| n.as_str()).unwrap_or("");
        if !name.starts_with("int8") {
            continue;
        }
        let diff = k.get("max_abs_diff_vs_portable").and_then(num)?;
        if diff != 0.0 {
            return Some(format!("{name}: max_abs_diff_vs_portable = {diff:e}"));
        }
    }
    None
}

/// Run one gate comparison, printing the verdict. Returns pass/fail.
fn run_gate(baseline: &Value, candidate: &Value, tolerance: f64, allow: bool) -> bool {
    if let Some(violation) = int8_exactness_violation(candidate) {
        // correctness, not performance: the override does not apply
        eprintln!("GATE FAIL (not overridable): INT8 bit-exactness broken — {violation}");
        return false;
    }
    let found = regressions(baseline, candidate, tolerance);
    if found.is_empty() {
        println!(
            "bench gate PASS: {} speedup ratios within {:.0}% of baseline",
            gated_speedups(baseline).len(),
            tolerance * 100.0
        );
        return true;
    }
    for r in &found {
        eprintln!(
            "REGRESSION {}: baseline {:.2}x -> candidate {:.2}x (floor {:.2}x)",
            r.path,
            r.baseline,
            r.candidate,
            r.baseline / (1.0 + tolerance)
        );
    }
    if allow {
        eprintln!(
            "bench gate OVERRIDDEN: {} regression(s) allowed by \
             ADAPT_BENCH_ALLOW_REGRESSION=1 — commit a regenerated baseline",
            found.len()
        );
        return true;
    }
    eprintln!(
        "bench gate FAIL: {} of {} gated ratios regressed >{:.0}%. If intentional, \
         regenerate BENCH_pipeline.json on the baseline host and commit it (or set \
         ADAPT_BENCH_ALLOW_REGRESSION=1 for this run).",
        found.len(),
        gated_speedups(baseline).len(),
        tolerance * 100.0
    );
    false
}

/// Deep-copy a report with every gated `speedup` divided by `factor` —
/// the injected-slowdown candidate for `--self-test`.
fn slowed(v: &Value, factor: f64, in_gated: bool) -> Value {
    match v {
        Value::Obj(pairs) => Value::Obj(
            pairs
                .iter()
                .map(|(k, val)| {
                    let gated_here =
                        in_gated || GATED_SECTIONS.contains(&k.as_str()) || k == "kernels";
                    if k == "speedup" && in_gated {
                        if let Some(x) = num(val) {
                            return (k.clone(), Value::Float(x / factor));
                        }
                    }
                    (k.clone(), slowed(val, factor, gated_here))
                })
                .collect(),
        ),
        Value::Arr(items) => {
            Value::Arr(items.iter().map(|i| slowed(i, factor, in_gated)).collect())
        }
        other => other.clone(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance: f64 = std::env::var("ADAPT_BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let allow = std::env::var("ADAPT_BENCH_ALLOW_REGRESSION").as_deref() == Ok("1");

    match args.as_slice() {
        [flag, baseline_path] if flag == "--self-test" => {
            let baseline = load(baseline_path);
            // arm 1: baseline vs itself must pass
            println!("self-test 1/2: baseline vs itself (must pass)");
            assert!(
                run_gate(&baseline, &baseline, tolerance, false),
                "self-test failed: gate rejected a baseline identical to itself"
            );
            // arm 2: injected 1.25x slowdown on every ratio must fail
            println!("self-test 2/2: injected /1.25 slowdown (must fail)");
            let injected = slowed(&baseline, 1.25, false);
            assert!(
                !run_gate(&baseline, &injected, tolerance, false),
                "self-test failed: gate accepted an injected >15% regression"
            );
            println!("bench gate self-test PASS");
        }
        [baseline_path, candidate_path] => {
            let baseline = load(baseline_path);
            let candidate = load(candidate_path);
            if !run_gate(&baseline, &candidate, tolerance, allow) {
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!(
                "usage: bench_gate <baseline.json> <candidate.json>\n       \
                 bench_gate --self-test <baseline.json>"
            );
            std::process::exit(2);
        }
    }
}
