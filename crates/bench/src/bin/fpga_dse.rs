//! FPGA design-space exploration: II/resource Pareto frontiers.
fn main() {
    println!("{}", adapt_bench::run_fpga_dse());
}
