//! Prints the training campaign report: validation losses, per-polar-bin
//! thresholds, and background-classifier accuracy on fresh bursts.
fn main() {
    let models = adapt_bench::shared_models();
    println!("{}", adapt_bench::run_train_report(&models));
}
