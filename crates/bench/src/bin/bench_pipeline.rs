//! Measures the localization hot-loop optimizations on this host and
//! writes `BENCH_pipeline.json` (checked into the repo root):
//!
//! * batched background-net inference — layer-walking `Mlp::predict`
//!   vs the BN-folded `CompiledMlp::forward_batch` plan (256 rings);
//! * batched INT8 inference — the per-sample scalar reference
//!   (`QuantizedMlp::forward_one_reference`, the old `forward_int8`
//!   loop) vs the compiled fixed-point plan's
//!   `CompiledQuantMlp::forward_batch` (256 rings), plus the max logit
//!   divergence against the float plan and the background-accuracy
//!   delta on a fresh burst;
//! * sky-map rasterization — flat `SkyMap::from_rings` sweep vs the
//!   coarse-to-fine `SkyMap::from_rings_adaptive` (12k pixels, 600
//!   rings), with a credible-region parity check;
//! * end-to-end `Pipeline::run_trial` latency in ML mode, which now
//!   reuses one `InferenceWorkspace` per thread across trials.
//!
//! Scale repetitions with `ADAPT_TIMING_REPS`; the output path can be
//! overridden with `ADAPT_BENCH_OUT`.

use adapt_bench::{existing_schema, EnvReport};
use adapt_core::prelude::*;
use adapt_localize::{HemisphereGrid, SkyMap};
use adapt_math::sampling::{isotropic_direction, standard_normal};
use adapt_math::vec3::UnitVec3;
use adapt_nn::mlp::BlockOrder;
use adapt_nn::{models, sigmoid, CompiledMlp, InferenceScratch, Matrix, QuantScratch};
use adapt_recon::{ComptonRing, RingFeatures};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct InferenceReport {
    mlp_predict_us: f64,
    compiled_forward_batch_us: f64,
    speedup: f64,
    max_abs_logit_diff: f64,
}

#[derive(Serialize)]
struct QuantInferenceReport {
    per_sample_reference_us: f64,
    compiled_forward_batch_us: f64,
    speedup: f64,
    max_abs_logit_diff_vs_float: f64,
    background_accuracy_float: f64,
    background_accuracy_int8: f64,
    background_accuracy_delta: f64,
}

#[derive(Serialize)]
struct SkymapReport {
    flat_sweep_ms: f64,
    coarse_to_fine_ms: f64,
    speedup: f64,
    credible_region_90_sr_flat: f64,
    credible_region_90_sr_adaptive: f64,
}

/// One vectorized hot kernel measured against its portable twin on the
/// same inputs (forced via the runtime dispatch override, not a rebuild).
#[derive(Serialize)]
struct KernelReport {
    kernel: String,
    isa: String,
    portable_us: f64,
    simd_us: f64,
    speedup: f64,
    /// Largest output divergence between the two paths. Exactly 0.0 for
    /// the INT8 GEMM and the skymap sweep (bit-exact contract); small
    /// but nonzero for the f64 GEMM (FMA re-rounds each accumulate).
    max_abs_diff_vs_portable: f64,
}

/// Report schema version. Bump when the report's shape changes; the
/// writer refuses to clobber a file written by a *newer* schema so a
/// stale binary cannot silently downgrade checked-in results.
const BENCH_SCHEMA: u64 = 3;

#[derive(Serialize)]
struct BenchReport {
    schema: u64,
    description: String,
    repetitions: usize,
    env: EnvReport,
    background_net_inference_256_rings: InferenceReport,
    int8_background_net_inference_256_rings: QuantInferenceReport,
    skymap_12k_pixels_600_rings: SkymapReport,
    /// Per-kernel SIMD-vs-portable micro-benchmarks (the regression
    /// gate's inputs — see `bench_gate`).
    kernels: Vec<KernelReport>,
    pipeline_trial_ml_ms: f64,
    /// Per-stage latency percentiles (paper Tables I/II protocol) from
    /// the telemetry histograms.
    stage_timing: adapt_core::TimingTable,
}

/// Median wall-clock seconds of `f` over `reps` timed repetitions
/// (after 3 warm-up calls).
fn median_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..3 {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..reps.max(5))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn synthetic_rings(n: usize, seed: u64) -> Vec<ComptonRing> {
    let source = UnitVec3::from_spherical(0.5, 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let axis = isotropic_direction(&mut rng);
            let eta =
                (axis.cos_angle_to(source) + 0.02 * standard_normal(&mut rng)).clamp(-0.999, 0.999);
            ComptonRing {
                axis,
                eta,
                d_eta: 0.02,
                features: RingFeatures::zeroed(),
                truth: None,
            }
        })
        .collect()
}

fn main() {
    let reps = adapt_bench::timing_reps();

    // -- batched background-net inference: Mlp::predict vs CompiledMlp --
    let mut rng = ChaCha8Rng::seed_from_u64(40);
    let mut net = models::background_network(13, BlockOrder::BatchNormFirst, &mut rng);
    let calib = Matrix::he_uniform(256, 13, &mut rng);
    net.forward(&calib, true); // realistic BN running statistics
    let plan = CompiledMlp::compile(&net);
    let batch = Matrix::he_uniform(256, 13, &mut rng);

    let predict_s = median_secs(reps, || net.predict(&batch));
    let mut scratch = InferenceScratch::new();
    let compiled_s = median_secs(reps, || plan.forward_batch(&batch, &mut scratch)[0]);
    let reference = net.predict(&batch);
    let max_abs_diff = plan
        .forward_batch(&batch, &mut scratch)
        .iter()
        .zip(reference.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    // -- int8 inference: per-sample scalar reference vs compiled plan --
    let models = adapt_bench::shared_models();
    let pipeline = Pipeline::new(&models);
    let qnet = &models.quantized_background;
    let polar_deg = 40.0;
    let (bench_rings, _) = pipeline.simulate_rings(
        &GrbConfig::new(2.0, polar_deg),
        PerturbationConfig::default(),
        0xFEED,
    );
    assert!(!bench_rings.is_empty(), "burst produced no rings");
    // 256 feature rows drawn from the real reconstructed-ring
    // distribution (cycled if the burst yielded fewer)
    let feature_rows: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            bench_rings[i % bench_rings.len()]
                .features
                .to_model_input(polar_deg)
                .to_vec()
        })
        .collect();
    let feat = Matrix::from_rows(&feature_rows);

    let per_sample_s = median_secs(reps, || {
        feature_rows
            .iter()
            .map(|r| qnet.forward_one_reference(r))
            .sum::<f64>()
    });
    let qplan = qnet.plan();
    let mut qscratch = QuantScratch::new();
    let batched_s = median_secs(reps, || qplan.forward_batch(&feat, &mut qscratch)[0]);

    // `quantized_background` is quantized from the QAT-fine-tuned
    // LinearFirst parent, so that parent is the FP32 side of the
    // divergence / accuracy comparison (as in the Fig.-11 experiments)
    let float_plan = CompiledMlp::compile(&models.background_linear_first);
    let float_logits = float_plan.forward_batch(&feat, &mut scratch).to_vec();
    let int8_logits = qplan.forward_batch(&feat, &mut qscratch).to_vec();
    let max_int8_float_diff = int8_logits
        .iter()
        .zip(&float_logits)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    // background-classification accuracy on the fresh burst, both backends
    let mut correct_float = 0usize;
    let mut correct_int8 = 0usize;
    for r in &bench_rings {
        let x = r.features.to_model_input(polar_deg);
        let truth = r.is_background_truth();
        let p_float = sigmoid(models.background_linear_first.predict_one(&x));
        let p_int8 = sigmoid(qnet.forward_one(&x));
        if models.thresholds.is_background(p_float, polar_deg) == truth {
            correct_float += 1;
        }
        if models.thresholds.is_background(p_int8, polar_deg) == truth {
            correct_int8 += 1;
        }
    }
    let acc_float = correct_float as f64 / bench_rings.len() as f64;
    let acc_int8 = correct_int8 as f64 / bench_rings.len() as f64;

    // -- sky-map rasterization: flat sweep vs coarse-to-fine --
    let rings = synthetic_rings(600, 42);
    let grid = HemisphereGrid::new(12_000);
    let flat_s = median_secs(reps.min(20), || {
        SkyMap::from_rings(&rings, grid.clone(), 3.0)
    });
    let adaptive_s = median_secs(reps.min(20), || {
        SkyMap::from_rings_adaptive(&rings, grid.clone(), 3.0)
    });
    let flat_map = SkyMap::from_rings(&rings, grid.clone(), 3.0);
    let adaptive_map = SkyMap::from_rings_adaptive(&rings, grid.clone(), 3.0);
    let cr90_flat = flat_map.credible_region_sr(0.9);
    let cr90_adaptive = adaptive_map.credible_region_sr(0.9);

    // -- per-kernel dispatch micro-benches: portable vs vectorized on
    //    identical inputs, toggled at runtime (no rebuild) --
    adapt_nn::set_force_portable(true);
    let int8_portable_s = median_secs(reps, || qplan.forward_batch(&feat, &mut qscratch)[0]);
    let int8_portable = qplan.forward_batch(&feat, &mut qscratch).to_vec();
    let f64_portable_s = median_secs(reps, || plan.forward_batch(&batch, &mut scratch)[0]);
    let f64_portable = plan.forward_batch(&batch, &mut scratch).to_vec();
    let sweep_portable_s = median_secs(reps.min(20), || {
        SkyMap::from_rings(&rings, grid.clone(), 3.0)
    });
    let sweep_portable = SkyMap::from_rings(&rings, grid.clone(), 3.0);
    adapt_nn::set_force_portable(false);
    let isa = adapt_nn::active_isa();
    let int8_simd_s = median_secs(reps, || qplan.forward_batch(&feat, &mut qscratch)[0]);
    let int8_simd = qplan.forward_batch(&feat, &mut qscratch).to_vec();
    let f64_simd_s = median_secs(reps, || plan.forward_batch(&batch, &mut scratch)[0]);
    let f64_simd = plan.forward_batch(&batch, &mut scratch).to_vec();
    let sweep_simd_s = median_secs(reps.min(20), || {
        SkyMap::from_rings(&rings, grid.clone(), 3.0)
    });
    let sweep_simd = SkyMap::from_rings(&rings, grid.clone(), 3.0);
    // back to the env-derived default for the end-to-end sections below
    adapt_nn::set_force_portable(
        std::env::var("ADAPT_FORCE_PORTABLE")
            .map(|v| v == "1")
            .unwrap_or(false),
    );
    let max_diff = |a: &[f64], b: &[f64]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max)
    };
    let kernel_row = |kernel: &str, portable_s: f64, simd_s: f64, diff: f64| KernelReport {
        kernel: kernel.into(),
        isa: isa.to_string(),
        portable_us: portable_s * 1e6,
        simd_us: simd_s * 1e6,
        speedup: portable_s / simd_s,
        max_abs_diff_vs_portable: diff,
    };
    let int8_kernel_diff = max_diff(&int8_simd, &int8_portable);
    assert_eq!(
        int8_kernel_diff, 0.0,
        "INT8 SIMD kernel must be bit-exact against the portable plan"
    );
    let kernels = vec![
        kernel_row(
            "int8_gemm_requant_256x13",
            int8_portable_s,
            int8_simd_s,
            int8_kernel_diff,
        ),
        kernel_row(
            "f64_gemm_fma_256x13",
            f64_portable_s,
            f64_simd_s,
            max_diff(&f64_simd, &f64_portable),
        ),
        kernel_row(
            "skymap_sweep_12k_600",
            sweep_portable_s,
            sweep_simd_s,
            max_diff(sweep_simd.probabilities(), sweep_portable.probabilities()),
        ),
    ];

    // -- end-to-end ML trial (workspace reused across trials) --
    let grb = GrbConfig::new(1.0, 0.0);
    let trial_s = median_secs(reps.min(20), || {
        pipeline.run_trial(
            PipelineMode::Ml,
            &grb,
            PerturbationConfig::default(),
            0xB127,
        )
    });

    // -- per-stage percentiles over the same protocol as Tables I/II --
    let stage_timing = adapt_core::measure_stages(&pipeline, reps.min(20), 0x712);

    let out = BenchReport {
        schema: BENCH_SCHEMA,
        description: "localization hot-loop benchmarks; regenerate with \
                      `cargo run --release -p adapt-bench --bin bench_pipeline`"
            .into(),
        repetitions: reps,
        env: EnvReport {
            git_rev: adapt_bench::git_rev(),
            cpu_model: adapt_bench::cpu_model(),
            kernel_isa: isa.to_string(),
            isa_features: adapt_nn::detected_features()
                .iter()
                .map(|s| s.to_string())
                .collect(),
        },
        background_net_inference_256_rings: InferenceReport {
            mlp_predict_us: predict_s * 1e6,
            compiled_forward_batch_us: compiled_s * 1e6,
            speedup: predict_s / compiled_s,
            max_abs_logit_diff: max_abs_diff,
        },
        int8_background_net_inference_256_rings: QuantInferenceReport {
            per_sample_reference_us: per_sample_s * 1e6,
            compiled_forward_batch_us: batched_s * 1e6,
            speedup: per_sample_s / batched_s,
            max_abs_logit_diff_vs_float: max_int8_float_diff,
            background_accuracy_float: acc_float,
            background_accuracy_int8: acc_int8,
            background_accuracy_delta: acc_int8 - acc_float,
        },
        skymap_12k_pixels_600_rings: SkymapReport {
            flat_sweep_ms: flat_s * 1e3,
            coarse_to_fine_ms: adaptive_s * 1e3,
            speedup: flat_s / adaptive_s,
            credible_region_90_sr_flat: cr90_flat,
            credible_region_90_sr_adaptive: cr90_adaptive,
        },
        kernels,
        pipeline_trial_ml_ms: trial_s * 1e3,
        stage_timing,
    };
    let path = std::env::var("ADAPT_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    if let Some(found) = existing_schema(&path) {
        assert!(
            found <= BENCH_SCHEMA,
            "{path} was written by schema {found} but this binary writes schema \
             {BENCH_SCHEMA}; rebuild from the current tree instead of overwriting"
        );
    }
    let pretty = serde_json::to_string_pretty(&out).expect("serialize benchmark report");
    std::fs::write(&path, pretty + "\n").expect("write benchmark report");
    println!("wrote {path} (schema {BENCH_SCHEMA})");
    println!(
        "inference: predict {:.1} us vs compiled {:.1} us ({:.2}x, max |dlogit| {:.2e})",
        predict_s * 1e6,
        compiled_s * 1e6,
        predict_s / compiled_s,
        max_abs_diff
    );
    println!(
        "int8:      per-sample {:.1} us vs batched plan {:.1} us ({:.2}x, max |dlogit| vs float {:.2e}, acc {:.3} -> {:.3})",
        per_sample_s * 1e6,
        batched_s * 1e6,
        per_sample_s / batched_s,
        max_int8_float_diff,
        acc_float,
        acc_int8
    );
    println!(
        "skymap:    flat {:.2} ms vs coarse-to-fine {:.2} ms ({:.2}x, CR90 {:.4} vs {:.4} sr)",
        flat_s * 1e3,
        adaptive_s * 1e3,
        flat_s / adaptive_s,
        cr90_flat,
        cr90_adaptive
    );
    println!("pipeline:  ML trial median {:.1} ms", trial_s * 1e3);
    println!(
        "dispatch:  {} (features: {})",
        out.env.kernel_isa,
        out.env.isa_features.join(", ")
    );
    for k in &out.kernels {
        println!(
            "kernel:    {} [{}] portable {:.1} us vs simd {:.1} us ({:.2}x, max diff {:.2e})",
            k.kernel, k.isa, k.portable_us, k.simd_us, k.speedup, k.max_abs_diff_vs_portable
        );
    }
}
