//! Extension experiment; see adapt-bench docs for the ADAPT_* knobs.
fn main() {
    let models = adapt_bench::shared_models();
    let spec = adapt_core::TrialSpec::from_env();
    println!("{}", adapt_bench::run_failure_injection(&models, spec));
}
