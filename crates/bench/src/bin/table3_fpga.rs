//! Regenerates the FPGA quantization table (paper Table III) from the
//! synthesis model plus a bit-exact co-simulation of the INT8 kernel.
fn main() {
    let models = adapt_bench::shared_models();
    println!("{}", adapt_bench::run_table3(&models));
}
