//! Quantization-strategy comparison (PTQ/QAT, per-tensor/channel, INT8/4).
fn main() {
    let models = adapt_bench::shared_models();
    println!("{}", adapt_bench::run_quant_strategies(&models));
}
