//! Regenerates the paper figure of the same number. Scale with
//! `ADAPT_TRIALS` / `ADAPT_META_TRIALS` (see adapt-bench docs).
fn main() {
    let models = adapt_bench::shared_models();
    let spec = adapt_core::TrialSpec::from_env();
    println!("{}", adapt_bench::run_fig11(&models, spec));
}
