//! Streaming event generation: the flight-time view of the simulator.
//!
//! The batched [`BurstSimulation`](crate::campaign::BurstSimulation) draws
//! every event of an exposure window at once; the onboard runtime instead
//! consumes a time-ordered stream spanning hours, with the background rate
//! following the balloon's [`FlightProfile`](crate::flight::FlightProfile)
//! and GRBs injected at scheduled onsets. [`StreamingSource`] provides that
//! stream as an iterator of [`StreamedEvent`]s while *sharing* the batched
//! per-particle code path ([`BurstSimulation::grb_event`] /
//! [`BurstSimulation::background_event`]) — there is exactly one
//! transport-and-response sampling implementation in the crate.
//!
//! Background arrivals form a nonhomogeneous Poisson process
//! `λ(t) = λ_nominal · scale · background_multiplier_at(t)` realized by
//! thinning against the profile's rate ceiling. Arrival times are drawn
//! sequentially (cheap), then each accepted particle is transported in
//! rayon-parallel blocks using its counter-derived RNG — so the event
//! content at a given index is deterministic regardless of block size or
//! thread count.

use crate::campaign::BurstSimulation;
use crate::config::{BackgroundConfig, DetectorConfig, GrbConfig, PerturbationConfig};
use crate::event::Event;
use crate::flight::FlightProfile;
use crate::scenario::Scenario;
use adapt_math::sampling::{exponential, poisson};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Background arrivals are generated (and transported in parallel) in
/// blocks of this many simulated seconds.
const BLOCK_S: f64 = 4.0;

/// A GRB injected into the stream at a scheduled onset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BurstInjection {
    /// Stream time of the burst-window start (s from stream start).
    pub t_onset_s: f64,
    /// The burst itself (fluence, direction, spectrum, light curve).
    pub grb: GrbConfig,
}

/// Configuration of a [`StreamingSource`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Detector geometry and response.
    pub detector: DetectorConfig,
    /// Background population; `particle_fluence` is interpreted as the
    /// *nominal per-second* fluence (particles/cm²/s) before the flight
    /// profile's multiplier is applied.
    pub background: BackgroundConfig,
    /// Detector perturbation (usually none in flight replays).
    pub perturbation: PerturbationConfig,
    /// Altitude profile scaling the background rate over the stream.
    pub profile: FlightProfile,
    /// Mission-elapsed time (hours) at stream time zero.
    pub start_h: f64,
    /// Stream length (s).
    pub duration_s: f64,
    /// Extra multiplier on the nominal background rate (load knob:
    /// `4.0` = "4x nominal background").
    pub background_scale: f64,
    /// Scheduled GRBs.
    pub bursts: Vec<BurstInjection>,
    /// Hostile-sky anomalies stacked on the stream (quiet by default).
    pub scenario: Scenario,
}

impl StreamConfig {
    /// Defaults: standard detector, nominal background treated as a
    /// per-second rate, no perturbation, stream starting at mission t=0.
    pub fn new(profile: FlightProfile, duration_s: f64) -> Self {
        StreamConfig {
            detector: DetectorConfig::default(),
            background: BackgroundConfig::default(),
            perturbation: PerturbationConfig::default(),
            profile,
            start_h: 0.0,
            duration_s,
            background_scale: 1.0,
            bursts: Vec::new(),
            scenario: Scenario::default(),
        }
    }

    /// Add a burst injection (builder style).
    pub fn with_burst(mut self, t_onset_s: f64, grb: GrbConfig) -> Self {
        self.bursts.push(BurstInjection { t_onset_s, grb });
        self
    }

    /// Attach a hostile-sky scenario (builder style).
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }
}

/// One measured event with its absolute stream arrival time. The
/// embedded event's `arrival_time` equals `t_s`, so downstream windowing
/// can use either.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamedEvent {
    /// Arrival time (s from stream start).
    pub t_s: f64,
    /// The measured event.
    pub event: Event,
}

/// Counters describing what a [`StreamingSource`] generated so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Incident background particles aimed at the detector.
    pub n_background_incident: u64,
    /// Incident GRB photons aimed at the detector (all injections).
    pub n_grb_incident: u64,
    /// Measured events yielded.
    pub n_measured: u64,
    /// Pre-generated burst photons lost to detector-dropout windows.
    pub n_outage_dropped: u64,
    /// Merged-stream events suppressed by dead-time.
    pub n_dead_time_dropped: u64,
}

/// A time-ordered iterator of measured events over a flight profile.
///
/// `seed` fully determines the stream. Burst events are pre-generated at
/// construction (bursts are short and sparse); background events are
/// generated lazily in `BLOCK_S`-second blocks so multi-hour streams
/// never materialize in memory.
pub struct StreamingSource {
    sim: BurstSimulation,
    profile: FlightProfile,
    start_h: f64,
    duration_s: f64,
    /// Incident-particle ceiling rate (Hz) the thinning draws against.
    rate_max_hz: f64,
    /// Nominal incident rate (Hz) at multiplier 1, including the scale.
    rate_scaled_hz: f64,
    arrival_rng: ChaCha8Rng,
    bkg_stream: u64,
    bkg_index: u64,
    /// Next candidate arrival of the rate-`rate_max_hz` homogeneous
    /// process (s); thinning accepts a subset.
    next_candidate_s: f64,
    burst_events: Vec<StreamedEvent>,
    next_burst: usize,
    block: Vec<StreamedEvent>,
    block_pos: usize,
    /// Background generated for all t < block_end_s.
    block_end_s: f64,
    scenario: Scenario,
    /// Largest dead-time constant across scenario components, if any.
    dead_tau_s: Option<f64>,
    /// Arrival time of the last emitted event (dead-time reference).
    last_emitted_s: f64,
    stats: StreamStats,
}

impl StreamingSource {
    /// Build the source; pre-generates all burst events (through the
    /// shared [`BurstSimulation::grb_event`] path) and prepares the lazy
    /// background process.
    pub fn new(config: StreamConfig, seed: u64) -> Self {
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        let bkg_stream: u64 = master.gen();

        // Background transport scenario: a zero-fluence GRB so the shared
        // BurstSimulation only ever contributes background events here.
        let mut null_grb = GrbConfig::new(0.0, 0.0);
        null_grb.duration_s = 1.0;
        let sim = BurstSimulation::new(
            config.detector.clone(),
            null_grb,
            config.background.clone(),
            config.perturbation,
        );

        // `particle_fluence` is per-second here, so the batched
        // "per-window" expectation with a 1 s window is a rate in Hz.
        let rate_nominal_hz = sim.expected_background_particles();
        let rate_scaled_hz = rate_nominal_hz * config.background_scale;

        // Thinning ceiling: the profile multiplier is piecewise-smooth;
        // probe it on a fine grid and add a safety margin. Acceptance is
        // clamped to 1, so a probe miss softly caps the peak instead of
        // biasing the rest of the stream. Scenario rate modifiers fold in
        // through their analytic bound, so ramps/steps/spikes never clip.
        let end_h = config.start_h + config.duration_s / 3600.0;
        let mut mult_max = f64::MIN;
        for i in 0..=2048 {
            let t_h = config.start_h + (end_h - config.start_h) * i as f64 / 2048.0;
            mult_max = mult_max.max(config.profile.background_multiplier_at(t_h));
        }
        let scenario = config.scenario.clone();
        let rate_max_hz =
            (rate_scaled_hz * mult_max * scenario.rate_multiplier_bound() * 1.05).max(1e-9);

        let mut stats = StreamStats::default();

        // Pre-generate burst events: per-injection Poisson count and
        // decorrelated stream, exactly like a batched window, with
        // arrival times shifted to the onset. Scenario components with a
        // photon-population channel expand into ordinary injections here.
        let scenario_injections = scenario.injections();
        let mut burst_events: Vec<StreamedEvent> = Vec::new();
        for inj in config.bursts.iter().chain(&scenario_injections) {
            let bsim = BurstSimulation::new(
                config.detector.clone(),
                inj.grb.clone(),
                config.background.clone(),
                config.perturbation,
            );
            let n = poisson(&mut master, bsim.expected_grb_photons());
            let stream: u64 = master.gen();
            stats.n_grb_incident += n;
            let onset = inj.t_onset_s;
            let duration = config.duration_s;
            let mut evs: Vec<StreamedEvent> = (0..n)
                .into_par_iter()
                .filter_map(|i| {
                    let mut e = bsim.grb_event(stream, i)?;
                    let t = onset + e.arrival_time;
                    if t >= duration {
                        return None;
                    }
                    e.arrival_time = t;
                    Some(StreamedEvent { t_s: t, event: e })
                })
                .collect();
            burst_events.append(&mut evs);
        }
        burst_events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s));

        // Detector dropouts thin the pre-generated burst photons with a
        // dedicated construction-time stream; the draw sequence depends
        // only on the (deterministic) sorted event list, so replays and
        // `skip_until` restores see the identical survivor set. The RNG
        // is only minted when a dropout exists, keeping quiet-scenario
        // streams draw-for-draw identical to the pre-scenario source.
        if scenario.has_dropouts() {
            let mut drop_rng = ChaCha8Rng::seed_from_u64(master.gen());
            burst_events.retain(|ev| {
                let survival = scenario.survival_at(ev.t_s);
                let keep = survival >= 1.0 || drop_rng.gen::<f64>() < survival;
                if !keep {
                    stats.n_outage_dropped += 1;
                }
                keep
            });
        }

        // First candidate arrival of the ceiling-rate process.
        let mut arrival_rng = master;
        let first = exponential(&mut arrival_rng, 1.0 / rate_max_hz);

        StreamingSource {
            sim,
            profile: config.profile,
            start_h: config.start_h,
            duration_s: config.duration_s,
            rate_max_hz,
            rate_scaled_hz,
            arrival_rng,
            bkg_stream,
            bkg_index: 0,
            next_candidate_s: first,
            burst_events,
            next_burst: 0,
            block: Vec::new(),
            block_pos: 0,
            block_end_s: 0.0,
            dead_tau_s: scenario.dead_time_s(),
            scenario,
            last_emitted_s: f64::NEG_INFINITY,
            stats,
        }
    }

    /// Generation counters so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The incident-background ceiling rate (Hz) used for thinning.
    pub fn rate_max_hz(&self) -> f64 {
        self.rate_max_hz
    }

    /// Background multiplier at stream time `t_s`.
    pub fn multiplier_at(&self, t_s: f64) -> f64 {
        self.profile
            .background_multiplier_at(self.start_h + t_s / 3600.0)
    }

    /// The hostile-sky scenario stacked on this stream.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The instantaneous background intensity λ(t) the thinning loop
    /// targets at `t_s`: nominal rate × profile multiplier × scenario
    /// rate modifiers × scenario dropout survival. By construction this
    /// never exceeds [`rate_max_hz`](Self::rate_max_hz) (modulo the
    /// profile grid probe), which the envelope property test pins.
    pub fn instantaneous_rate_hz(&self, t_s: f64) -> f64 {
        self.rate_scaled_hz
            * self.multiplier_at(t_s)
            * self.scenario.rate_multiplier_at(t_s)
            * self.scenario.survival_at(t_s)
    }

    /// Generate the next background block: thin candidate arrivals over
    /// `[block_end_s, block_end_s + BLOCK_S)`, then transport the accepted
    /// particles in parallel through the shared batched path.
    fn generate_block(&mut self) {
        let t0 = self.block_end_s;
        let t1 = (t0 + BLOCK_S).min(self.duration_s);
        let mut accepted: Vec<(f64, u64)> = Vec::new();
        while self.next_candidate_s < t1 {
            let t = self.next_candidate_s;
            let lambda = self.instantaneous_rate_hz(t);
            let p = (lambda / self.rate_max_hz).min(1.0);
            if self.arrival_rng.gen::<f64>() < p {
                accepted.push((t, self.bkg_index));
                self.bkg_index += 1;
            }
            self.next_candidate_s = t + exponential(&mut self.arrival_rng, 1.0 / self.rate_max_hz);
        }
        self.stats.n_background_incident += accepted.len() as u64;
        let sim = &self.sim;
        let stream = self.bkg_stream;
        self.block = accepted
            .par_iter()
            .filter_map(|&(t, i)| {
                sim.background_event(stream, i).map(|mut e| {
                    e.arrival_time = t;
                    StreamedEvent { t_s: t, event: e }
                })
            })
            .collect();
        self.block_pos = 0;
        self.block_end_s = t1;
    }

    /// Skip the stream forward so the next yielded event has
    /// `t_s > after_s` (checkpoint-restore: deterministically regenerate
    /// and discard everything already consumed). Dead-time bookkeeping
    /// replays event-for-event, so the suppression pattern after the cut
    /// matches an uninterrupted stream exactly.
    pub fn skip_until(&mut self, after_s: f64) {
        while let Some(t) = self.peek_time() {
            if t > after_s {
                break;
            }
            let ev = self.pop_raw().expect("peeked event must pop");
            self.admit(ev.t_s);
        }
    }

    /// Pop the merged head event without applying dead-time.
    fn pop_raw(&mut self) -> Option<StreamedEvent> {
        self.peek_time()?;
        let tb = self.burst_events.get(self.next_burst).map(|e| e.t_s);
        let tg = self.block.get(self.block_pos).map(|e| e.t_s);
        let take_burst = match (tg, tb) {
            (Some(g), Some(b)) => b <= g,
            (None, Some(_)) => true,
            _ => false,
        };
        Some(if take_burst {
            let ev = self.burst_events[self.next_burst].clone();
            self.next_burst += 1;
            ev
        } else {
            let ev = self.block[self.block_pos].clone();
            self.block_pos += 1;
            ev
        })
    }

    /// Dead-time bookkeeping for one popped event; true when the event
    /// is emitted, false when it is suppressed. Dead-time acts on the
    /// merged stream: an event within τ of the previously emitted event
    /// is lost regardless of origin.
    fn admit(&mut self, t_s: f64) -> bool {
        if let Some(tau) = self.dead_tau_s {
            if t_s - self.last_emitted_s < tau {
                self.stats.n_dead_time_dropped += 1;
                return false;
            }
        }
        self.last_emitted_s = t_s;
        self.stats.n_measured += 1;
        true
    }

    fn peek_time(&mut self) -> Option<f64> {
        loop {
            let tb = self.burst_events.get(self.next_burst).map(|e| e.t_s);
            let tg = self.block.get(self.block_pos).map(|e| e.t_s);
            match (tg, tb) {
                (Some(g), Some(b)) => return Some(g.min(b)),
                (Some(g), None) => return Some(g),
                (None, Some(b)) if b <= self.block_end_s || self.block_end_s >= self.duration_s => {
                    return Some(b)
                }
                (None, _) => {
                    if self.block_end_s >= self.duration_s {
                        return None;
                    }
                    self.generate_block();
                }
            }
        }
    }
}

impl Iterator for StreamingSource {
    type Item = StreamedEvent;

    fn next(&mut self) -> Option<StreamedEvent> {
        loop {
            let ev = self.pop_raw()?;
            if self.admit(ev.t_s) {
                return Some(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ParticleOrigin;
    use crate::scenario::ScenarioComponent;

    fn quick_config(duration_s: f64) -> StreamConfig {
        let mut c = StreamConfig::new(FlightProfile::antarctic_ldb(), duration_s);
        // keep debug-mode test transport cheap
        c.background.particle_fluence = 2.0;
        c.start_h = 20.0; // at float: multiplier ~1
        c
    }

    #[test]
    fn stream_is_time_ordered_and_deterministic() {
        let cfg = quick_config(6.0).with_burst(2.0, GrbConfig::new(1.0, 0.0));
        let a: Vec<StreamedEvent> = StreamingSource::new(cfg.clone(), 42).collect();
        let b: Vec<StreamedEvent> = StreamingSource::new(cfg, 42).collect();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.t_s, y.t_s);
            assert_eq!(x.event.hits.len(), y.event.hits.len());
        }
        for w in a.windows(2) {
            assert!(
                w[0].t_s <= w[1].t_s,
                "out of order: {} > {}",
                w[0].t_s,
                w[1].t_s
            );
        }
        for ev in &a {
            assert!((0.0..6.0).contains(&ev.t_s));
            assert_eq!(ev.t_s, ev.event.arrival_time);
        }
    }

    #[test]
    fn burst_events_cluster_at_the_onset() {
        let cfg = quick_config(8.0).with_burst(5.0, GrbConfig::new(2.0, 10.0));
        let events: Vec<StreamedEvent> = StreamingSource::new(cfg, 7).collect();
        let grb: Vec<f64> = events
            .iter()
            .filter(|e| e.event.truth.origin == ParticleOrigin::Grb)
            .map(|e| e.t_s)
            .collect();
        assert!(
            grb.len() > 20,
            "streamed burst produced {} events",
            grb.len()
        );
        // GRB window is 1 s starting at the onset
        assert!(grb.iter().all(|&t| (5.0..6.0).contains(&t)));
    }

    #[test]
    fn rate_follows_the_flight_profile() {
        // ascent start (low multiplier ~0.35 of nominal) vs Pfotzer
        // crossing: the Pfotzer stream must be denser
        let mut low = quick_config(30.0);
        low.start_h = 0.0; // sea level: residual floor
        let mut peak = quick_config(30.0);
        peak.start_h = 1.3; // ~16.5 km: Pfotzer maximum
        let n_low = StreamingSource::new(low, 3).count();
        let n_peak = StreamingSource::new(peak, 3).count();
        assert!(
            n_peak as f64 > 1.5 * n_low.max(1) as f64,
            "low {n_low}, peak {n_peak}"
        );
    }

    fn hostile(duration_s: f64) -> StreamConfig {
        quick_config(duration_s).with_scenario(
            Scenario::quiet()
                .with(ScenarioComponent::SolarFlareRamp {
                    t_start_s: 1.0,
                    rise_s: 2.0,
                    hold_s: 1.0,
                    fall_s: 2.0,
                    peak_multiplier: 3.0,
                })
                .with(ScenarioComponent::SgrFlareTrain {
                    t_start_s: 2.0,
                    period_s: 1.5,
                    flares: 2,
                    fluence: 0.8,
                    polar_deg: 25.0,
                })
                .with(ScenarioComponent::DetectorDropout {
                    t_start_s: 4.0,
                    t_end_s: 5.0,
                    drop_fraction: 0.5,
                })
                .with(ScenarioComponent::DeadTime { tau_s: 1e-4 }),
        )
    }

    #[test]
    fn scenario_stream_is_deterministic() {
        let cfg = hostile(6.0);
        let a: Vec<StreamedEvent> = StreamingSource::new(cfg.clone(), 42).collect();
        let b: Vec<StreamedEvent> = StreamingSource::new(cfg, 42).collect();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.t_s, y.t_s);
            assert_eq!(x.event.hits.len(), y.event.hits.len());
        }
        for w in a.windows(2) {
            assert!(w[0].t_s <= w[1].t_s);
        }
    }

    #[test]
    fn saa_step_raises_the_background_rate() {
        let mut quiet = quick_config(20.0);
        quiet.background.particle_fluence = 6.0;
        let stepped =
            quiet
                .clone()
                .with_scenario(Scenario::quiet().with(ScenarioComponent::SaaStep {
                    t_start_s: 0.0,
                    t_end_s: 20.0,
                    multiplier: 4.0,
                }));
        let n_quiet = StreamingSource::new(quiet, 9).count();
        let n_step = StreamingSource::new(stepped, 9).count();
        assert!(
            n_step as f64 > 2.5 * n_quiet.max(1) as f64,
            "quiet {n_quiet}, stepped {n_step}"
        );
    }

    #[test]
    fn occultation_dip_suppresses_events_inside_the_window() {
        let mut cfg = quick_config(12.0);
        cfg.background.particle_fluence = 8.0;
        let cfg = cfg.with_scenario(Scenario::quiet().with(ScenarioComponent::OccultationDip {
            t_start_s: 4.0,
            t_end_s: 8.0,
            floor: 0.05,
        }));
        let events: Vec<StreamedEvent> = StreamingSource::new(cfg, 5).collect();
        let inside = events
            .iter()
            .filter(|e| (4.0..8.0).contains(&e.t_s))
            .count();
        let outside = events.len() - inside;
        assert!(
            (inside as f64) < 0.25 * outside as f64,
            "inside {inside}, outside {outside}"
        );
    }

    #[test]
    fn dead_time_enforces_minimum_separation() {
        let tau = 0.01;
        let mut cfg = quick_config(10.0);
        cfg.background.particle_fluence = 10.0;
        let cfg =
            cfg.with_scenario(Scenario::quiet().with(ScenarioComponent::DeadTime { tau_s: tau }));
        let mut src = StreamingSource::new(cfg, 21);
        let events: Vec<StreamedEvent> = src.by_ref().collect();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(
                w[1].t_s - w[0].t_s >= tau,
                "dead-time violated: {} then {}",
                w[0].t_s,
                w[1].t_s
            );
        }
        assert!(src.stats().n_dead_time_dropped > 0);
    }

    #[test]
    fn scenario_skip_until_resumes_the_same_tail() {
        let cfg = hostile(6.0);
        let full: Vec<StreamedEvent> = StreamingSource::new(cfg.clone(), 11).collect();
        let cut = 3.7;
        let mut resumed = StreamingSource::new(cfg, 11);
        resumed.skip_until(cut);
        let tail: Vec<StreamedEvent> = resumed.collect();
        let expected: Vec<&StreamedEvent> = full.iter().filter(|e| e.t_s > cut).collect();
        assert_eq!(tail.len(), expected.len());
        for (x, y) in tail.iter().zip(expected) {
            assert_eq!(x.t_s, y.t_s);
            assert_eq!(x.event.hits.len(), y.event.hits.len());
        }
    }

    #[test]
    fn skip_until_resumes_the_same_tail() {
        let cfg = quick_config(6.0).with_burst(3.0, GrbConfig::new(1.0, 0.0));
        let full: Vec<StreamedEvent> = StreamingSource::new(cfg.clone(), 11).collect();
        let cut = 3.2;
        let mut resumed = StreamingSource::new(cfg, 11);
        resumed.skip_until(cut);
        let tail: Vec<StreamedEvent> = resumed.collect();
        let expected: Vec<&StreamedEvent> = full.iter().filter(|e| e.t_s > cut).collect();
        assert_eq!(tail.len(), expected.len());
        for (x, y) in tail.iter().zip(expected) {
            assert_eq!(x.t_s, y.t_s);
            assert_eq!(x.event.hits.len(), y.event.hits.len());
        }
    }
}
