//! Monte-Carlo photon transport through the layered detector.
//!
//! Each photon is walked interaction-by-interaction: exponential free paths
//! in scintillator (gaps between layers contribute no attenuation), a
//! Compton-vs-photoelectric branch at each interaction, Klein–Nishina
//! angular sampling for scatters, and termination on photoabsorption,
//! escape, or degradation below the transport cutoff.

use crate::event::{InteractionKind, ParticleOrigin, TrueEvent, TrueHit};
use crate::geometry::{DetectorGeometry, MaterialSegment};
use crate::physics::{sample_compton, Material, PAIR_THRESHOLD_MEV};
use adapt_math::rotation::deflect;
use adapt_math::sampling::{exponential, isotropic_direction};
use adapt_math::vec3::{UnitVec3, Vec3};
use adapt_math::ELECTRON_REST_MEV;
use rand::Rng;

/// Upper bound on interactions per photon — physical histories end long
/// before this; the cap guards against pathological parameter choices.
const MAX_INTERACTIONS: usize = 64;

/// Photon transport engine. Cheap to clone; immutable during simulation so
/// it can be shared freely across rayon workers.
#[derive(Debug, Clone)]
pub struct Transport {
    geometry: DetectorGeometry,
    material: Material,
    cutoff: f64,
}

impl Transport {
    /// Build a transport engine.
    pub fn new(geometry: DetectorGeometry, material: Material, transport_cutoff: f64) -> Self {
        assert!(transport_cutoff > 0.0);
        Transport {
            geometry,
            material,
            cutoff: transport_cutoff,
        }
    }

    /// The geometry this engine walks.
    pub fn geometry(&self) -> &DetectorGeometry {
        &self.geometry
    }

    /// Trace one photon from far away.
    ///
    /// * `entry_point` — a point on the aiming disc outside the detector.
    /// * `travel_dir` — unit propagation direction (for a source at
    ///   direction `s`, this is `-s`).
    /// * `energy` — incident photon energy (MeV).
    /// * `origin`/`source_dir` — truth metadata recorded on the event.
    ///
    /// Returns `None` when the photon crosses without interacting.
    pub fn trace<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entry_point: Vec3,
        travel_dir: UnitVec3,
        energy: f64,
        origin: ParticleOrigin,
        source_dir: UnitVec3,
    ) -> Option<TrueEvent> {
        let mut hits: Vec<TrueHit> = Vec::new();
        let mut true_eta = None;
        let mut segments: Vec<MaterialSegment> = Vec::new();
        // photon work stack: the primary plus any annihilation secondaries
        // from pair production. `is_primary` gates the true-eta record.
        let mut stack: Vec<(Vec3, UnitVec3, f64, bool)> =
            vec![(entry_point, travel_dir, energy, true)];
        let mut interactions = 0usize;

        while let Some((mut pos, mut dir, mut e, is_primary)) = stack.pop() {
            let mut first_of_this_photon = true;
            while interactions < MAX_INTERACTIONS {
                let att = self.material.attenuation(e);
                let free_path = exponential(rng, att.mean_free_path());
                // Walk material segments along the current ray until the
                // free path is consumed or the stack is exited.
                self.geometry
                    .material_segments(pos, dir, 1e-9, &mut segments);
                let mut remaining = free_path;
                let mut interaction: Option<(Vec3, usize)> = None;
                for seg in &segments {
                    let len = seg.path_length();
                    if remaining <= len {
                        let t = seg.t_enter + remaining;
                        interaction = Some((pos + dir.as_vec() * t, seg.layer));
                        break;
                    }
                    remaining -= len;
                }
                let Some((point, layer)) = interaction else {
                    break; // escaped
                };
                interactions += 1;

                let branch: f64 = rng.gen_range(0.0..1.0);
                if branch < att.compton_fraction() {
                    let scatter = sample_compton(rng, e);
                    hits.push(TrueHit {
                        position: point,
                        energy: scatter.deposited_energy,
                        layer,
                        kind: InteractionKind::Compton,
                    });
                    if is_primary && first_of_this_photon && hits.len() == 1 {
                        true_eta = Some(scatter.cos_theta);
                    }
                    first_of_this_photon = false;
                    e = scatter.scattered_energy;
                    let phi = rng.gen_range(0.0..std::f64::consts::TAU);
                    dir = deflect(dir, scatter.cos_theta.clamp(-1.0, 1.0).acos(), phi);
                    pos = point;
                    if e < self.cutoff {
                        // Treat the residual photon as locally absorbed: it
                        // would photoabsorb within a fraction of a
                        // millimeter anyway.
                        if let Some(last) = hits.last_mut() {
                            last.energy += e;
                            last.kind = InteractionKind::Photoabsorption;
                        }
                        break;
                    }
                } else if branch < att.compton_fraction() + att.pair_fraction() {
                    // pair production: pair kinetic energy deposits here;
                    // two back-to-back 511 keV annihilation photons continue
                    let kinetic = e - PAIR_THRESHOLD_MEV;
                    hits.push(TrueHit {
                        position: point,
                        energy: kinetic.max(0.0),
                        layer,
                        kind: InteractionKind::PairProduction,
                    });
                    let annih_dir = isotropic_direction(rng);
                    stack.push((point, annih_dir, ELECTRON_REST_MEV, false));
                    stack.push((point, annih_dir.flipped(), ELECTRON_REST_MEV, false));
                    break;
                } else {
                    hits.push(TrueHit {
                        position: point,
                        energy: e,
                        layer,
                        kind: InteractionKind::Photoabsorption,
                    });
                    break;
                }
            }
        }

        // drop zero-energy bookkeeping hits (a pair produced exactly at
        // threshold deposits nothing locally)
        hits.retain(|h| h.energy > 0.0);
        if hits.is_empty() {
            return None;
        }
        // an eta value only makes sense with a second hit to define the
        // axis, and only when the *first two chronological hits* belong to
        // the primary's Compton history — pair topologies clear it
        if hits.len() < 2 || hits[0].kind == InteractionKind::PairProduction {
            true_eta = None;
        }
        Some(TrueEvent {
            origin,
            source_dir,
            incident_energy: energy,
            hits,
            true_eta,
        })
    }

    /// Pick a uniformly random entry point on the aiming disc perpendicular
    /// to `travel_dir`, positioned outside the detector so the ray sweeps
    /// the full stack.
    pub fn sample_entry_point<R: Rng + ?Sized>(&self, rng: &mut R, travel_dir: UnitVec3) -> Vec3 {
        let radius = self.geometry.bounding_radius();
        let (u, v) = travel_dir.orthonormal_basis();
        // uniform on disc
        let r = radius * rng.gen_range(0.0f64..1.0).sqrt();
        let phi = rng.gen_range(0.0..std::f64::consts::TAU);
        let offset = u.as_vec() * (r * phi.cos()) + v.as_vec() * (r * phi.sin());
        // back off along -dir so the ray starts outside the bounding sphere
        offset - travel_dir.as_vec() * (2.0 * radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn transport() -> Transport {
        let cfg = DetectorConfig::default();
        Transport::new(
            DetectorGeometry::new(&cfg),
            Material::new(cfg.electron_density, cfg.pe_crossover_energy),
            cfg.transport_cutoff,
        )
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn energy_is_conserved_per_event() {
        let t = transport();
        let mut r = rng(1);
        let down = UnitVec3::PLUS_Z.flipped();
        let mut n_events = 0;
        for _ in 0..2000 {
            let entry = t.sample_entry_point(&mut r, down);
            if let Some(ev) = t.trace(
                &mut r,
                entry,
                down,
                1.0,
                ParticleOrigin::Grb,
                UnitVec3::PLUS_Z,
            ) {
                n_events += 1;
                let dep = ev.deposited_energy();
                assert!(dep > 0.0 && dep <= 1.0 + 1e-9, "deposited {dep}");
                assert!(!ev.hits.is_empty());
                for h in &ev.hits {
                    assert!(h.energy > 0.0);
                    assert!(h.layer < 4);
                    assert!(t.geometry().layer_containing(h.position).is_some());
                }
            }
        }
        // a 6 cm CsI-like stack at 1 MeV should interact a sizable fraction
        // of the time for rays over the aiming disc
        assert!(n_events > 300, "only {n_events} events in 2000 photons");
    }

    #[test]
    fn true_eta_matches_first_scatter_geometry() {
        let t = transport();
        let mut r = rng(2);
        let down = UnitVec3::PLUS_Z.flipped();
        let mut checked = 0;
        for _ in 0..4000 {
            let entry = t.sample_entry_point(&mut r, down);
            let Some(ev) = t.trace(
                &mut r,
                entry,
                down,
                0.8,
                ParticleOrigin::Grb,
                UnitVec3::PLUS_Z,
            ) else {
                continue;
            };
            if ev.hits.len() < 2 {
                assert!(ev.true_eta.is_none());
                continue;
            }
            let Some(eta) = ev.true_eta else { continue };
            // the axis through first two true hits makes angle acos(eta)
            // with the *incoming* direction; equivalently with source_dir
            // since incoming = -source for normal incidence here.
            let axis = (ev.hits[1].position - ev.hits[0].position).normalized();
            let cos_to_travel = axis.cos_angle_to(down);
            assert!(
                (cos_to_travel - eta).abs() < 1e-9,
                "eta {eta} vs geometric {cos_to_travel}"
            );
            checked += 1;
        }
        assert!(checked > 100, "too few multi-hit events: {checked}");
    }

    #[test]
    fn photon_missing_detector_returns_none() {
        let t = transport();
        let mut r = rng(3);
        let down = UnitVec3::PLUS_Z.flipped();
        // entry far outside footprint traveling straight down
        let ev = t.trace(
            &mut r,
            Vec3::new(500.0, 0.0, 100.0),
            down,
            1.0,
            ParticleOrigin::Grb,
            UnitVec3::PLUS_Z,
        );
        assert!(ev.is_none());
    }

    #[test]
    fn low_energy_photons_mostly_single_hit() {
        // at 50 keV photoelectric dominates: nearly all events have 1 hit
        let t = transport();
        let mut r = rng(4);
        let down = UnitVec3::PLUS_Z.flipped();
        let mut single = 0;
        let mut multi = 0;
        for _ in 0..1500 {
            let entry = t.sample_entry_point(&mut r, down);
            if let Some(ev) = t.trace(
                &mut r,
                entry,
                down,
                0.05,
                ParticleOrigin::Grb,
                UnitVec3::PLUS_Z,
            ) {
                if ev.hits.len() == 1 {
                    single += 1;
                } else {
                    multi += 1;
                }
            }
        }
        assert!(single > 5 * multi.max(1), "single {single}, multi {multi}");
    }

    #[test]
    fn pair_production_appears_at_high_energy() {
        let t = transport();
        let mut r = rng(17);
        let down = UnitVec3::PLUS_Z.flipped();
        let mut pair_events = 0;
        let mut total = 0;
        for _ in 0..3000 {
            let entry = t.sample_entry_point(&mut r, down);
            if let Some(ev) = t.trace(
                &mut r,
                entry,
                down,
                8.0,
                ParticleOrigin::Grb,
                UnitVec3::PLUS_Z,
            ) {
                total += 1;
                if ev
                    .hits
                    .iter()
                    .any(|h| h.kind == InteractionKind::PairProduction)
                {
                    pair_events += 1;
                    // energy conservation still holds with secondaries
                    assert!(ev.deposited_energy() <= ev.incident_energy + 1e-9);
                    // a pair event whose first hit is the conversion has no
                    // usable Compton eta
                    if ev.hits[0].kind == InteractionKind::PairProduction {
                        assert!(ev.true_eta.is_none());
                    }
                }
            }
        }
        assert!(total > 300);
        // at 8 MeV a sizeable minority of interacting photons convert
        let frac = pair_events as f64 / total as f64;
        assert!(frac > 0.05, "pair fraction {frac}");
    }

    #[test]
    fn no_pair_production_below_threshold() {
        let t = transport();
        let mut r = rng(18);
        let down = UnitVec3::PLUS_Z.flipped();
        for _ in 0..800 {
            let entry = t.sample_entry_point(&mut r, down);
            if let Some(ev) = t.trace(
                &mut r,
                entry,
                down,
                0.9,
                ParticleOrigin::Grb,
                UnitVec3::PLUS_Z,
            ) {
                assert!(ev
                    .hits
                    .iter()
                    .all(|h| h.kind != InteractionKind::PairProduction));
            }
        }
    }

    #[test]
    fn entry_points_lie_outside_and_aim_at_stack() {
        let t = transport();
        let mut r = rng(5);
        let dir = UnitVec3::from_spherical(2.5, 0.7);
        for _ in 0..200 {
            let p = t.sample_entry_point(&mut r, dir);
            assert!(p.norm() >= t.geometry().bounding_radius() * 0.99);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = transport();
        let down = UnitVec3::PLUS_Z.flipped();
        let run = |seed| {
            let mut r = rng(seed);
            let mut total = 0.0;
            for _ in 0..200 {
                let entry = t.sample_entry_point(&mut r, down);
                if let Some(ev) = t.trace(
                    &mut r,
                    entry,
                    down,
                    1.0,
                    ParticleOrigin::Grb,
                    UnitVec3::PLUS_Z,
                ) {
                    total += ev.deposited_energy();
                }
            }
            total
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
