//! `adapt-sim`: Monte-Carlo gamma-ray transport and detector response for
//! the ADAPT reproduction — the substitute for the paper's Geant4 +
//! electronics-model simulation stack.
//!
//! # Overview
//!
//! The simulator models the ADAPT demonstrator as four square scintillator
//! layers read out by crossed wavelength-shifting fiber arrays. A photon
//! from a GRB (Band spectrum, paper's β = −2.35, 30 keV minimum energy) or
//! from the atmospheric background (power law arriving from below the
//! horizon) is transported interaction-by-interaction:
//!
//! 1. exponential free paths with the material's total attenuation,
//! 2. Compton vs photoelectric branching by relative cross section,
//! 3. Klein–Nishina sampling of scattering angles,
//! 4. termination on photoabsorption, escape, or the low-energy cutoff.
//!
//! The readout response then quantizes positions to the fiber pitch,
//! collapses z to the tile layer, merges same-cell deposits, smears
//! energies, applies the 30 keV trigger threshold, and reports the
//! front-end's *claimed* uncertainties — which deliberately under-describe
//! the true error distribution, reproducing the dη mis-estimation the
//! paper's dEta network corrects.
//!
//! # Quick start
//!
//! ```
//! use adapt_sim::{BurstSimulation, GrbConfig};
//!
//! let sim = BurstSimulation::with_defaults(GrbConfig::new(1.0, 0.0));
//! let burst = sim.simulate(42);
//! let (grb, bkg) = burst.counts_by_origin();
//! assert!(grb > 0 && bkg > 0);
//! ```

pub mod campaign;
pub mod config;
pub mod event;
pub mod flight;
pub mod geometry;
pub mod physics;
pub mod pileup;
pub mod response;
pub mod scenario;
pub mod source;
pub mod stream;
pub mod time;
pub mod transport;

pub use campaign::{BurstData, BurstSimulation};
pub use config::{BackgroundConfig, DetectorConfig, GrbConfig, GrbSpectrum, PerturbationConfig};
pub use event::{Event, InteractionKind, MeasuredHit, ParticleOrigin, TrueEvent, TrueHit};
pub use flight::{FlightPhase, FlightProfile};
pub use geometry::DetectorGeometry;
pub use physics::Material;
pub use pileup::{apply_pileup, PileupConfig, PileupStats};
pub use response::DetectorResponse;
pub use scenario::{Scenario, ScenarioComponent};
pub use source::{BackgroundSource, GrbSource, TabulatedSpectrum};
pub use stream::{BurstInjection, StreamConfig, StreamStats, StreamedEvent, StreamingSource};
pub use time::LightCurve;
pub use transport::Transport;
