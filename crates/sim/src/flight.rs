//! Balloon flight profile: altitude-dependent background intensity.
//!
//! ADAPT flies on a high-altitude balloon; the atmospheric MeV background
//! depends on the residual atmospheric depth above the instrument, which
//! varies as the balloon ascends and drifts. This module models that
//! dependence so long-exposure studies (trigger false-alarm rates,
//! background calibration drift) see a realistic, slowly varying rate
//! rather than a constant.

use serde::{Deserialize, Serialize};

/// Reference atmospheric scale height (km).
const SCALE_HEIGHT_KM: f64 = 7.2;

/// Sea-level atmospheric depth (g/cm²).
const SEA_LEVEL_DEPTH: f64 = 1033.0;

/// Convert altitude (km) to residual atmospheric depth (g/cm²) with an
/// isothermal-atmosphere approximation.
pub fn depth_at_altitude(altitude_km: f64) -> f64 {
    SEA_LEVEL_DEPTH * (-altitude_km / SCALE_HEIGHT_KM).exp()
}

/// The background-intensity model: secondary gamma-ray production peaks at
/// the Pfotzer maximum (~100 g/cm², ~16 km) and falls off both deeper in
/// the atmosphere and toward float altitude, where a residual flattens out
/// (cosmic diffuse + instrument activation).
pub fn background_scale_at_depth(depth_g_cm2: f64) -> f64 {
    const PFOTZER_DEPTH: f64 = 100.0;
    const RESIDUAL: f64 = 0.35;
    let x = depth_g_cm2.max(0.0) / PFOTZER_DEPTH;
    // unimodal in x with maximum 1 at x = 1, tending to RESIDUAL as x -> 0
    let peak = x * (1.0 - x).exp() / (1.0f64 * (0.0f64).exp());
    RESIDUAL + (1.0 - RESIDUAL) * peak.clamp(0.0, 1.0)
}

/// One phase of a flight.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightPhase {
    /// Phase duration (hours).
    pub duration_h: f64,
    /// Altitude at the start of the phase (km).
    pub start_altitude_km: f64,
    /// Altitude at the end of the phase (km).
    pub end_altitude_km: f64,
}

/// A piecewise-linear altitude profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightProfile {
    phases: Vec<FlightPhase>,
}

impl FlightProfile {
    /// Build from phases (must be non-empty).
    pub fn new(phases: Vec<FlightPhase>) -> Self {
        assert!(!phases.is_empty(), "flight needs at least one phase");
        assert!(phases.iter().all(|p| p.duration_h > 0.0));
        FlightProfile { phases }
    }

    /// A representative Antarctic long-duration flight: 3 h ascent to
    /// 38 km, then float with a slow diurnal altitude oscillation
    /// (approximated by alternating drift phases).
    pub fn antarctic_ldb() -> Self {
        FlightProfile::new(vec![
            FlightPhase {
                duration_h: 3.0,
                start_altitude_km: 0.0,
                end_altitude_km: 38.0,
            },
            FlightPhase {
                duration_h: 12.0,
                start_altitude_km: 38.0,
                end_altitude_km: 36.0,
            },
            FlightPhase {
                duration_h: 12.0,
                start_altitude_km: 36.0,
                end_altitude_km: 38.0,
            },
        ])
    }

    /// A short checkout flight: a 1 h ascent to 38 km crossing the
    /// Pfotzer maximum, then 1 h at float. Used by the streaming-runtime
    /// smoke tests, where a full LDB profile would be needlessly long.
    pub fn checkout_2h() -> Self {
        FlightProfile::new(vec![
            FlightPhase {
                duration_h: 1.0,
                start_altitude_km: 0.0,
                end_altitude_km: 38.0,
            },
            FlightPhase {
                duration_h: 1.0,
                start_altitude_km: 38.0,
                end_altitude_km: 38.0,
            },
        ])
    }

    /// Total flight duration (hours).
    pub fn duration_h(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_h).sum()
    }

    /// Altitude at mission-elapsed time `t_h` (hours), clamped to the
    /// profile's ends: `t_h <= 0` pins the first phase's start altitude,
    /// `t_h >= duration_h()` pins the last phase's end altitude exactly
    /// (no extrapolation past either boundary, and the interpolation
    /// fraction itself is clamped so floating-point accumulation across
    /// many phases can never step outside a phase's altitude range).
    pub fn altitude_at(&self, t_h: f64) -> f64 {
        if t_h <= 0.0 {
            return self.phases[0].start_altitude_km;
        }
        let total = self.duration_h();
        if t_h >= total {
            return self.phases.last().map(|p| p.end_altitude_km).unwrap_or(0.0);
        }
        let mut t = t_h;
        for p in &self.phases {
            if t <= p.duration_h {
                let frac = (t / p.duration_h).clamp(0.0, 1.0);
                return p.start_altitude_km + frac * (p.end_altitude_km - p.start_altitude_km);
            }
            t -= p.duration_h;
        }
        self.phases.last().map(|p| p.end_altitude_km).unwrap_or(0.0)
    }

    /// The background-fluence multiplier at mission time `t_h`, relative
    /// to the nominal float-altitude value: scale the flight-time default
    /// `BackgroundConfig::particle_fluence` by this.
    pub fn background_multiplier_at(&self, t_h: f64) -> f64 {
        let here = background_scale_at_depth(depth_at_altitude(self.altitude_at(t_h)));
        let float_alt = self
            .phases
            .last()
            .map(|p| p.end_altitude_km)
            .unwrap_or(38.0);
        let at_float = background_scale_at_depth(depth_at_altitude(float_alt));
        here / at_float
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_decreases_with_altitude() {
        assert!((depth_at_altitude(0.0) - SEA_LEVEL_DEPTH).abs() < 1e-9);
        let mut last = f64::INFINITY;
        for km in [0.0, 5.0, 16.0, 25.0, 38.0] {
            let d = depth_at_altitude(km);
            assert!(d < last && d > 0.0);
            last = d;
        }
        // ~38 km float: a few g/cm^2
        let float_depth = depth_at_altitude(38.0);
        assert!(float_depth > 1.0 && float_depth < 15.0, "{float_depth}");
    }

    #[test]
    fn pfotzer_maximum_exists() {
        let at_peak = background_scale_at_depth(100.0);
        assert!((at_peak - 1.0).abs() < 1e-9, "normalized to 1 at the peak");
        assert!(background_scale_at_depth(400.0) < at_peak);
        assert!(background_scale_at_depth(5.0) < at_peak);
        // residual floor at zero depth
        assert!(background_scale_at_depth(0.0) >= 0.35 - 1e-9);
    }

    #[test]
    fn profile_interpolates_linearly() {
        let p = FlightProfile::antarctic_ldb();
        assert!((p.duration_h() - 27.0).abs() < 1e-12);
        assert!((p.altitude_at(0.0) - 0.0).abs() < 1e-12);
        assert!((p.altitude_at(1.5) - 19.0).abs() < 1e-9, "mid-ascent");
        assert!((p.altitude_at(3.0) - 38.0).abs() < 1e-9);
        assert!((p.altitude_at(9.0) - 37.0).abs() < 1e-9, "drift down");
        // clamped past the end
        assert!((p.altitude_at(1000.0) - 38.0).abs() < 1e-9);
    }

    #[test]
    fn ascent_crosses_the_background_peak() {
        // during ascent the multiplier rises above the float level then
        // settles back near 1
        let p = FlightProfile::antarctic_ldb();
        let at_pfotzer_alt = p.background_multiplier_at(1.3); // ~16.5 km
        let at_float = p.background_multiplier_at(20.0);
        assert!(
            at_pfotzer_alt > 1.5,
            "Pfotzer crossing multiplier {at_pfotzer_alt}"
        );
        assert!((at_float - 1.0).abs() < 0.2, "float multiplier {at_float}");
    }

    #[test]
    fn boundary_values_are_pinned_not_extrapolated() {
        let p = FlightProfile::antarctic_ldb();
        let total = p.duration_h();
        // exactly at the final boundary: bitwise the last phase's end
        assert_eq!(p.altitude_at(total), 38.0);
        // just past and far past the boundary: clamped, identical values
        assert_eq!(p.altitude_at(total + 1e-12), 38.0);
        assert_eq!(p.altitude_at(total + 1e6), 38.0);
        // before the start: the first phase's start altitude, no
        // backwards extrapolation along the ascent slope
        assert_eq!(p.altitude_at(0.0), 0.0);
        assert_eq!(p.altitude_at(-5.0), 0.0);
        // the multiplier inherits the clamp: exactly 1 at and beyond the
        // final boundary (same value bitwise, since both sides evaluate
        // the same float altitude)
        assert_eq!(p.background_multiplier_at(total), 1.0);
        assert_eq!(
            p.background_multiplier_at(total),
            p.background_multiplier_at(total + 1000.0)
        );
    }

    #[test]
    fn fp_accumulation_across_many_phases_stays_clamped() {
        // 30 phases of 0.1 h: the per-phase subtraction accumulates
        // floating-point error; the boundary must still pin exactly.
        let phases: Vec<FlightPhase> = (0..30)
            .map(|i| FlightPhase {
                duration_h: 0.1,
                start_altitude_km: i as f64,
                end_altitude_km: i as f64 + 1.0,
            })
            .collect();
        let p = FlightProfile::new(phases);
        let total = p.duration_h();
        assert_eq!(p.altitude_at(total), 30.0);
        assert_eq!(p.altitude_at(total * 2.0), 30.0);
        // interior values stay within each phase's altitude range
        for i in 0..300 {
            let t = total * i as f64 / 300.0;
            let alt = p.altitude_at(t);
            assert!((0.0..=30.0).contains(&alt), "t={t} alt={alt}");
        }
    }

    #[test]
    fn checkout_profile_covers_ascent_and_float() {
        let p = FlightProfile::checkout_2h();
        assert!((p.duration_h() - 2.0).abs() < 1e-12);
        assert_eq!(p.altitude_at(0.0), 0.0);
        assert_eq!(p.altitude_at(2.0), 38.0);
        // ascent crosses the Pfotzer maximum
        let peak = (0..100)
            .map(|i| p.background_multiplier_at(i as f64 / 100.0))
            .fold(0.0f64, f64::max);
        assert!(peak > 1.5, "checkout ascent peak multiplier {peak}");
        assert_eq!(p.background_multiplier_at(2.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_profile_panics() {
        FlightProfile::new(vec![]);
    }
}
