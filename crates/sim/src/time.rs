//! Temporal structure: burst light curves and arrival-time sampling.
//!
//! The paper's evaluation uses 1-second GRBs with light curves matching
//! the collaboration's instrument papers; short GRBs are typically
//! fast-rise-exponential-decay (FRED) pulses. Arrival times drive the
//! burst-trigger stage and the pileup study (the paper's future-work item
//! on events arriving within the detection latency).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A normalized light curve over the exposure window `[0, duration)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LightCurve {
    /// Constant rate — the background's temporal profile.
    Constant,
    /// A top-hat pulse occupying `[start, start + width)`.
    TopHat {
        /// Pulse onset (s).
        start: f64,
        /// Pulse width (s).
        width: f64,
    },
    /// Fast-rise exponential-decay: instantaneous rise at `start`, then
    /// `exp(-(t - start)/tau)`.
    Fred {
        /// Pulse onset (s).
        start: f64,
        /// Decay constant (s).
        tau: f64,
    },
}

impl LightCurve {
    /// Sample one arrival time within `[0, duration)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, duration: f64) -> f64 {
        assert!(duration > 0.0);
        match *self {
            LightCurve::Constant => rng.gen_range(0.0..duration),
            LightCurve::TopHat { start, width } => {
                let start = start.clamp(0.0, duration);
                let end = (start + width).clamp(start, duration);
                if end > start {
                    rng.gen_range(start..end)
                } else {
                    start
                }
            }
            LightCurve::Fred { start, tau } => {
                // inverse-CDF of a truncated exponential on [start, duration)
                let start = start.clamp(0.0, duration);
                let span = duration - start;
                if span <= 0.0 || tau <= 0.0 {
                    return start;
                }
                let u: f64 = rng.gen_range(0.0..1.0);
                let cdf_max = 1.0 - (-span / tau).exp();
                start - tau * (1.0 - u * cdf_max).ln()
            }
        }
    }

    /// Relative intensity at time `t` (unnormalized).
    pub fn intensity(&self, t: f64) -> f64 {
        match *self {
            LightCurve::Constant => 1.0,
            LightCurve::TopHat { start, width } => {
                if t >= start && t < start + width {
                    1.0
                } else {
                    0.0
                }
            }
            LightCurve::Fred { start, tau } => {
                if t < start {
                    0.0
                } else {
                    (-(t - start) / tau).exp()
                }
            }
        }
    }

    /// A representative short-GRB pulse: onset at 0.1 s, 0.3 s decay.
    pub fn short_grb() -> Self {
        LightCurve::Fred {
            start: 0.1,
            tau: 0.3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_math::stats::RunningStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(91)
    }

    #[test]
    fn constant_is_uniform() {
        let lc = LightCurve::Constant;
        let mut r = rng();
        let mut s = RunningStats::new();
        for _ in 0..20_000 {
            let t = lc.sample(&mut r, 2.0);
            assert!((0.0..2.0).contains(&t));
            s.push(t);
        }
        assert!((s.mean() - 1.0).abs() < 0.02);
    }

    #[test]
    fn tophat_respects_bounds() {
        let lc = LightCurve::TopHat {
            start: 0.2,
            width: 0.3,
        };
        let mut r = rng();
        for _ in 0..5000 {
            let t = lc.sample(&mut r, 1.0);
            assert!((0.2..0.5).contains(&t), "t = {t}");
        }
        assert_eq!(lc.intensity(0.1), 0.0);
        assert_eq!(lc.intensity(0.3), 1.0);
        assert_eq!(lc.intensity(0.6), 0.0);
    }

    #[test]
    fn fred_decays() {
        let lc = LightCurve::short_grb();
        let mut r = rng();
        let mut early = 0;
        let n = 20_000;
        for _ in 0..n {
            let t = lc.sample(&mut r, 1.0);
            assert!((0.1..1.0).contains(&t), "t = {t}");
            if t < 0.4 {
                early += 1;
            }
        }
        // within one tau of onset: 1 - e^-1 of the *untruncated* mass;
        // truncation at 1.0 s (3 tau) makes it slightly higher
        let frac = early as f64 / n as f64;
        assert!(frac > 0.6 && frac < 0.75, "early fraction {frac}");
        assert!(lc.intensity(0.1) > lc.intensity(0.5));
        assert_eq!(lc.intensity(0.0), 0.0);
    }

    #[test]
    fn fred_truncation_edge() {
        // decay constant much longer than the window: nearly uniform
        let lc = LightCurve::Fred {
            start: 0.0,
            tau: 100.0,
        };
        let mut r = rng();
        let mut s = RunningStats::new();
        for _ in 0..20_000 {
            s.push(lc.sample(&mut r, 1.0));
        }
        assert!((s.mean() - 0.5).abs() < 0.02, "mean {}", s.mean());
    }
}
