//! Event pileup: multiple particles arriving within the detector's
//! coincidence window are read out as a single, merged event.
//!
//! This is the paper's first named future-work item ("multiple events that
//! arrive simultaneously to within the detection latency of the
//! instrument"). A merged event combines the hits of its constituents —
//! usually producing a kinematically inconsistent topology that either
//! fails reconstruction (losing signal) or yields a badly wrong ring
//! (adding a hostile outlier).

use crate::event::Event;
use serde::{Deserialize, Serialize};

/// Pileup model parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PileupConfig {
    /// Coincidence window (s): events closer in time than this merge.
    /// The default corresponds to a few-microsecond scintillator/readout
    /// integration time.
    pub coincidence_window_s: f64,
}

impl Default for PileupConfig {
    fn default() -> Self {
        PileupConfig {
            coincidence_window_s: 5e-6,
        }
    }
}

/// Statistics of one pileup pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PileupStats {
    /// Events entering the merge.
    pub events_in: usize,
    /// Events after merging.
    pub events_out: usize,
    /// Merged groups containing more than one constituent.
    pub merged_groups: usize,
    /// The largest group size observed.
    pub largest_group: usize,
}

impl PileupStats {
    /// Fraction of input events that ended up in a merged group.
    pub fn pileup_fraction(&self) -> f64 {
        if self.events_in == 0 {
            return 0.0;
        }
        let merged_members = self.events_in - (self.events_out - self.merged_groups);
        merged_members as f64 / self.events_in as f64
    }
}

/// Apply the pileup model: sort by arrival time, merge chains of events
/// whose consecutive gaps are below the window.
///
/// A merged event keeps the earliest arrival time, concatenates all hits,
/// and inherits the truth record of its *highest-energy* constituent (the
/// label a calibration pipeline would most plausibly assign); its
/// `true_eta` is cleared because the merged topology no longer corresponds
/// to a single scattering history.
pub fn apply_pileup(mut events: Vec<Event>, config: &PileupConfig) -> (Vec<Event>, PileupStats) {
    let events_in = events.len();
    events.sort_by(|a, b| {
        a.arrival_time
            .partial_cmp(&b.arrival_time)
            .expect("non-finite arrival time")
    });
    let mut out: Vec<Event> = Vec::with_capacity(events.len());
    let mut merged_groups = 0usize;
    let mut largest_group = if events.is_empty() { 0 } else { 1 };
    let mut group: Vec<Event> = Vec::new();
    let flush =
        |group: &mut Vec<Event>, out: &mut Vec<Event>, merged: &mut usize, largest: &mut usize| {
            if group.is_empty() {
                return;
            }
            *largest = (*largest).max(group.len());
            if group.len() == 1 {
                out.push(group.pop().unwrap());
                return;
            }
            *merged += 1;
            // highest-energy constituent donates the truth record
            let lead = group
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.total_energy()
                        .partial_cmp(&b.total_energy())
                        .expect("non-finite energy")
                })
                .map(|(i, _)| i)
                .unwrap();
            let mut truth = group[lead].truth.clone();
            truth.true_eta = None;
            let arrival_time = group[0].arrival_time;
            let mut hits = Vec::new();
            for ev in group.drain(..) {
                hits.extend(ev.hits);
            }
            out.push(Event {
                hits,
                truth,
                arrival_time,
            });
        };

    for ev in events {
        match group.last() {
            Some(last) if ev.arrival_time - last.arrival_time <= config.coincidence_window_s => {
                group.push(ev);
            }
            _ => {
                flush(&mut group, &mut out, &mut merged_groups, &mut largest_group);
                group.push(ev);
            }
        }
    }
    flush(&mut group, &mut out, &mut merged_groups, &mut largest_group);

    let stats = PileupStats {
        events_in,
        events_out: out.len(),
        merged_groups,
        largest_group,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MeasuredHit, ParticleOrigin, TrueEvent};
    use adapt_math::vec3::{UnitVec3, Vec3};

    fn event_at(t: f64, energy: f64) -> Event {
        Event {
            hits: vec![MeasuredHit {
                position: Vec3::new(t * 100.0, 0.0, 6.0),
                energy,
                sigma_position: Vec3::new(0.1, 0.1, 0.4),
                sigma_energy: 0.02,
                layer: 0,
            }],
            truth: TrueEvent {
                origin: ParticleOrigin::Grb,
                source_dir: UnitVec3::PLUS_Z,
                incident_energy: energy,
                hits: vec![],
                true_eta: Some(0.5),
            },
            arrival_time: t,
        }
    }

    #[test]
    fn distant_events_unmerged() {
        let events = vec![event_at(0.1, 0.5), event_at(0.5, 0.6), event_at(0.9, 0.7)];
        let (out, stats) = apply_pileup(events, &PileupConfig::default());
        assert_eq!(out.len(), 3);
        assert_eq!(stats.merged_groups, 0);
        assert_eq!(stats.pileup_fraction(), 0.0);
    }

    #[test]
    fn coincident_events_merge_hits() {
        let events = vec![
            event_at(0.100_000, 0.5),
            event_at(0.100_002, 0.9), // 2 us later: inside the window
            event_at(0.5, 0.3),
        ];
        let (out, stats) = apply_pileup(events, &PileupConfig::default());
        assert_eq!(out.len(), 2);
        assert_eq!(stats.merged_groups, 1);
        assert_eq!(stats.largest_group, 2);
        let merged = out
            .iter()
            .find(|e| e.hits.len() == 2)
            .expect("merged event present");
        // truth from the higher-energy constituent; eta cleared
        assert!((merged.truth.incident_energy - 0.9).abs() < 1e-12);
        assert!(merged.truth.true_eta.is_none());
        assert!((merged.arrival_time - 0.1).abs() < 1e-9);
    }

    #[test]
    fn chain_merging_is_transitive() {
        // three events each 3 us apart: consecutive gaps inside the 5 us
        // window chain into one group
        let events = vec![
            event_at(0.200_000, 0.2),
            event_at(0.200_003, 0.3),
            event_at(0.200_006, 0.4),
        ];
        let (out, stats) = apply_pileup(events, &PileupConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].hits.len(), 3);
        assert_eq!(stats.largest_group, 3);
        assert!((stats.pileup_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let (out, stats) = apply_pileup(Vec::new(), &PileupConfig::default());
        assert!(out.is_empty());
        assert_eq!(stats.events_in, 0);
        assert_eq!(stats.pileup_fraction(), 0.0);
    }

    #[test]
    fn output_sorted_by_time() {
        let events = vec![event_at(0.9, 0.1), event_at(0.1, 0.2), event_at(0.5, 0.3)];
        let (out, _) = apply_pileup(events, &PileupConfig::default());
        assert!(out
            .windows(2)
            .all(|w| w[0].arrival_time <= w[1].arrival_time));
    }
}
