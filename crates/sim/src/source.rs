//! Source models: the GRB's Band-function spectrum and the atmospheric
//! background population.
//!
//! Spectra are represented by a tabulated inverse CDF on a log-energy grid,
//! which makes sampling branch-free and lets the same machinery serve the
//! Band function, pure power laws, and any future empirical spectrum.

use crate::config::{BackgroundConfig, GrbConfig, GrbSpectrum};
use crate::geometry::DetectorGeometry;
use adapt_math::angles::deg_to_rad;
use adapt_math::sampling::limb_biased_updirection;
use adapt_math::vec3::UnitVec3;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of grid points for tabulated spectra. 2048 log-spaced points keep
/// interpolation error far below the detector's energy resolution.
const SPECTRUM_GRID: usize = 2048;

/// A photon-number spectrum `dN/dE` tabulated for inverse-CDF sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TabulatedSpectrum {
    /// Log-spaced energy grid (MeV).
    energies: Vec<f64>,
    /// Cumulative distribution at each grid point, normalized to 1.
    cdf: Vec<f64>,
    /// Mean photon energy (MeV), for fluence → photon-count conversion.
    mean_energy: f64,
}

impl TabulatedSpectrum {
    /// Tabulate an arbitrary non-negative density on `[e_min, e_max]`.
    pub fn from_density(e_min: f64, e_max: f64, density: impl Fn(f64) -> f64) -> Self {
        assert!(e_min > 0.0 && e_max > e_min, "invalid spectrum support");
        let n = SPECTRUM_GRID;
        let log_min = e_min.ln();
        let step = (e_max.ln() - log_min) / (n - 1) as f64;
        let energies: Vec<f64> = (0..n).map(|i| (log_min + i as f64 * step).exp()).collect();
        let mut cdf = vec![0.0; n];
        let mut e_weighted = 0.0;
        for i in 1..n {
            let e0 = energies[i - 1];
            let e1 = energies[i];
            let f0 = density(e0).max(0.0);
            let f1 = density(e1).max(0.0);
            let seg = 0.5 * (f0 + f1) * (e1 - e0);
            cdf[i] = cdf[i - 1] + seg;
            e_weighted += 0.5 * (f0 * e0 + f1 * e1) * (e1 - e0);
        }
        let total = cdf[n - 1];
        assert!(total > 0.0, "spectrum density integrates to zero");
        for c in cdf.iter_mut() {
            *c /= total;
        }
        TabulatedSpectrum {
            energies,
            cdf,
            mean_energy: e_weighted / total,
        }
    }

    /// The Band function (Band et al. 1993): a smoothly broken power law
    /// with low-energy index `alpha`, high-energy index `beta`, and peak
    /// energy `e_peak` of the `E² dN/dE` spectrum.
    pub fn band(spec: &GrbSpectrum) -> Self {
        let GrbSpectrum {
            alpha,
            beta,
            e_peak,
            e_min,
            e_max,
        } = *spec;
        assert!(alpha > beta, "Band function requires alpha > beta");
        let e_c = (alpha - beta) * e_peak / (2.0 + alpha);
        let scale = (e_c.powf(alpha - beta)) * (-(alpha - beta)).exp();
        Self::from_density(e_min, e_max, move |e| {
            if e < e_c {
                e.powf(alpha) * (-(2.0 + alpha) * e / e_peak).exp()
            } else {
                scale * e.powf(beta)
            }
        })
    }

    /// A pure power law `dN/dE ∝ E^index`.
    pub fn power_law(index: f64, e_min: f64, e_max: f64) -> Self {
        Self::from_density(e_min, e_max, move |e| e.powf(index))
    }

    /// Draw one photon energy (MeV).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cdf.partition_point(|&c| c < u);
        if idx == 0 {
            return self.energies[0];
        }
        let (c0, c1) = (self.cdf[idx - 1], self.cdf[idx]);
        let frac = if c1 > c0 { (u - c0) / (c1 - c0) } else { 0.0 };
        self.energies[idx - 1] + frac * (self.energies[idx] - self.energies[idx - 1])
    }

    /// Mean photon energy (MeV).
    pub fn mean_energy(&self) -> f64 {
        self.mean_energy
    }

    /// Support of the tabulation.
    pub fn support(&self) -> (f64, f64) {
        (self.energies[0], *self.energies.last().unwrap())
    }
}

/// The GRB as a sampling-ready source: a fixed direction and a spectrum.
#[derive(Debug, Clone)]
pub struct GrbSource {
    /// Unit vector pointing from the detector toward the source.
    pub direction: UnitVec3,
    /// Sampling-ready spectrum.
    pub spectrum: TabulatedSpectrum,
    /// Time-integrated energy fluence (MeV/cm²).
    pub fluence: f64,
}

impl GrbSource {
    /// Build from a configuration.
    pub fn new(config: &GrbConfig) -> Self {
        GrbSource {
            direction: UnitVec3::from_spherical(
                deg_to_rad(config.polar_angle_deg),
                deg_to_rad(config.azimuth_deg),
            ),
            spectrum: TabulatedSpectrum::band(&config.spectrum),
            fluence: config.fluence,
        }
    }

    /// Expected number of photons crossing the aiming disc of radius
    /// `disc_radius` (cm) oriented normal to the arrival direction.
    ///
    /// The photon fluence is `energy fluence / mean photon energy`; the
    /// aiming disc encloses the detector's silhouette, and photons that
    /// miss the scintillator simply produce no hits.
    pub fn expected_photons_on_disc(&self, disc_radius: f64) -> f64 {
        let photon_fluence = self.fluence / self.spectrum.mean_energy();
        photon_fluence * std::f64::consts::PI * disc_radius * disc_radius
    }

    /// Expected number of photons geometrically intercepted by the
    /// detector's silhouette — the physically meaningful incident count.
    pub fn expected_photons_on_detector(&self, geometry: &DetectorGeometry) -> f64 {
        let photon_fluence = self.fluence / self.spectrum.mean_energy();
        photon_fluence * geometry.projected_area(self.direction)
    }
}

/// The diffuse background as a sampling-ready source.
#[derive(Debug, Clone)]
pub struct BackgroundSource {
    spectrum: TabulatedSpectrum,
    limb_bias: f64,
    particle_fluence: f64,
}

impl BackgroundSource {
    /// Build from a configuration.
    pub fn new(config: &BackgroundConfig) -> Self {
        BackgroundSource {
            spectrum: TabulatedSpectrum::power_law(
                config.spectral_index,
                config.e_min,
                config.e_max,
            ),
            limb_bias: config.limb_bias,
            particle_fluence: config.particle_fluence,
        }
    }

    /// Draw a background particle: (direction *toward* its apparent origin,
    /// energy). Background arrives from below-horizon directions, so the
    /// apparent-origin direction points into the lower hemisphere.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (UnitVec3, f64) {
        let origin_dir = limb_biased_updirection(rng, self.limb_bias);
        (origin_dir, self.spectrum.sample(rng))
    }

    /// Expected number of background particles crossing an aiming disc of
    /// radius `disc_radius` during the exposure window.
    pub fn expected_particles_on_disc(&self, disc_radius: f64) -> f64 {
        self.particle_fluence * std::f64::consts::PI * disc_radius * disc_radius
    }

    /// The background spectrum.
    pub fn spectrum(&self) -> &TabulatedSpectrum {
        &self.spectrum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn band_samples_in_support() {
        let spec = TabulatedSpectrum::band(&GrbSpectrum::default());
        let mut r = rng();
        let (lo, hi) = spec.support();
        for _ in 0..5000 {
            let e = spec.sample(&mut r);
            assert!(e >= lo - 1e-12 && e <= hi + 1e-12);
        }
    }

    #[test]
    fn band_mean_energy_reasonable() {
        let spec = TabulatedSpectrum::band(&GrbSpectrum::default());
        // soft spectrum on [0.03, 10] MeV: mean well below 1 MeV
        let m = spec.mean_energy();
        assert!(m > 0.05 && m < 1.0, "mean energy {m}");
    }

    #[test]
    fn power_law_matches_analytic_cdf() {
        let spec = TabulatedSpectrum::power_law(-2.0, 0.1, 10.0);
        let mut r = rng();
        let n = 40_000;
        let mut below = 0usize;
        for _ in 0..n {
            if spec.sample(&mut r) < 1.0 {
                below += 1;
            }
        }
        // analytic CDF at 1.0 for E^-2 on [0.1, 10]: (10 - 1)/(10 - 0.1) ≈ 0.9091
        let got = below as f64 / n as f64;
        assert!((got - 0.9091).abs() < 0.01, "got {got}");
    }

    #[test]
    fn sample_mean_matches_tabulated_mean() {
        let spec = TabulatedSpectrum::power_law(-1.5, 0.05, 5.0);
        let mut r = rng();
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            sum += spec.sample(&mut r);
        }
        let got = sum / n as f64;
        assert!(
            (got - spec.mean_energy()).abs() / spec.mean_energy() < 0.02,
            "sampled {got} vs tabulated {}",
            spec.mean_energy()
        );
    }

    #[test]
    fn grb_source_direction_from_angles() {
        let g = GrbSource::new(&GrbConfig::new(1.0, 0.0));
        assert!(g.direction.angle_to(UnitVec3::PLUS_Z) < 1e-12);
        let g40 = GrbSource::new(&GrbConfig::new(1.0, 40.0));
        assert!((adapt_math::angles::polar_angle_deg(g40.direction) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn expected_counts_scale_with_fluence() {
        let geom = DetectorGeometry::new(&DetectorConfig::default());
        let g1 = GrbSource::new(&GrbConfig::new(1.0, 0.0));
        let g2 = GrbSource::new(&GrbConfig::new(2.0, 0.0));
        let r = geom.bounding_radius();
        assert!(
            (g2.expected_photons_on_disc(r) / g1.expected_photons_on_disc(r) - 2.0).abs() < 1e-9
        );
        assert!(g1.expected_photons_on_detector(&geom) > 0.0);
        // disc encloses silhouette
        assert!(g1.expected_photons_on_disc(r) >= g1.expected_photons_on_detector(&geom));
    }

    #[test]
    fn background_arrives_from_below() {
        let b = BackgroundSource::new(&BackgroundConfig::default());
        let mut r = rng();
        for _ in 0..500 {
            let (dir, e) = b.sample(&mut r);
            assert!(dir.as_vec().z <= 1e-12, "background origin below horizon");
            assert!((0.030..=10.0).contains(&e));
        }
    }
}
