//! Configuration of the simulated instrument and workloads.
//!
//! Defaults approximate the ADAPT demonstrator described in the paper and
//! its companion instrument papers: four scintillating-tile layers read out
//! by crossed wavelength-shifting fiber arrays, an energy range starting at
//! 30 keV, and an atmospheric background flux calibrated so that a
//! 1 MeV/cm² burst window delivers roughly 2–3× as many background Compton
//! rings as GRB rings (paper §II, "Limitations of the Existing Pipeline").

use serde::{Deserialize, Serialize};

/// Geometry and response parameters of the detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Half-extent of each square tile layer in x and y (cm).
    pub half_width: f64,
    /// Thickness of each scintillator layer (cm).
    pub layer_thickness: f64,
    /// z-coordinates of the layer centers, top first (cm).
    pub layer_centers_z: Vec<f64>,
    /// Pitch of the wavelength-shifting fiber arrays (cm): sets transverse
    /// position quantization.
    pub fiber_pitch: f64,
    /// Stochastic energy-resolution coefficient `a` in
    /// `sigma_E = a * sqrt(E) + b` (MeV^0.5 units for `a`, E in MeV).
    pub energy_res_stochastic: f64,
    /// Constant electronics noise floor `b` of the energy resolution (MeV).
    pub energy_res_floor: f64,
    /// Per-hit trigger threshold (MeV). The paper's simulations use a
    /// minimum energy of 30 keV.
    pub hit_threshold: f64,
    /// Electron density of the scintillator (electrons / cm³). The default
    /// approximates CsI (ρ = 4.51 g/cm³, Z/A ≈ 0.416).
    pub electron_density: f64,
    /// Energy at which the photoelectric and Compton attenuation
    /// coefficients cross (MeV). ~0.3 MeV for CsI.
    pub pe_crossover_energy: f64,
    /// Transport cutoff (MeV): a photon degraded below this is treated as
    /// locally photoabsorbed.
    pub transport_cutoff: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            half_width: 20.0,
            layer_thickness: 1.5,
            layer_centers_z: vec![6.0, 2.0, -2.0, -6.0],
            fiber_pitch: 0.3,
            energy_res_stochastic: 0.035,
            energy_res_floor: 0.004,
            hit_threshold: 0.030,
            electron_density: 1.13e24,
            pe_crossover_energy: 0.30,
            transport_cutoff: 0.015,
        }
    }
}

impl DetectorConfig {
    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layer_centers_z.len()
    }

    /// The reported 1-sigma energy uncertainty at measured energy `e` —
    /// this is what the front-end *claims*; the true error distribution has
    /// extra non-Gaussian components the claim misses.
    pub fn reported_sigma_energy(&self, e: f64) -> f64 {
        self.energy_res_stochastic * e.max(0.0).sqrt() + self.energy_res_floor
    }

    /// Reported transverse position uncertainty (cm): uniform quantization
    /// over one fiber pitch.
    pub fn reported_sigma_xy(&self) -> f64 {
        self.fiber_pitch / 12f64.sqrt()
    }

    /// Reported vertical position uncertainty (cm): uniform over a layer
    /// thickness.
    pub fn reported_sigma_z(&self) -> f64 {
        self.layer_thickness / 12f64.sqrt()
    }
}

/// Spectral model of the GRB: a Band-like broken power law fixed to the
/// paper's evaluation setup (β = −2.35, minimum simulated energy 30 keV).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrbSpectrum {
    /// Low-energy photon index α of the Band function.
    pub alpha: f64,
    /// High-energy photon index β (paper fixes −2.35).
    pub beta: f64,
    /// Break (peak) energy of the spectrum (MeV).
    pub e_peak: f64,
    /// Minimum simulated photon energy (MeV).
    pub e_min: f64,
    /// Maximum simulated photon energy (MeV).
    pub e_max: f64,
}

impl Default for GrbSpectrum {
    fn default() -> Self {
        GrbSpectrum {
            alpha: -1.0,
            beta: -2.35,
            e_peak: 0.30,
            e_min: 0.030,
            e_max: 10.0,
        }
    }
}

/// A gamma-ray burst workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrbConfig {
    /// Time-integrated energy fluence over the burst window (MeV/cm²).
    pub fluence: f64,
    /// Source polar angle in degrees from detector zenith (0° = normally
    /// incident from above).
    pub polar_angle_deg: f64,
    /// Source azimuth in degrees.
    pub azimuth_deg: f64,
    /// Spectral shape.
    pub spectrum: GrbSpectrum,
    /// Exposure window (s). The paper evaluates 1-second bursts with
    /// matched background exposure.
    pub duration_s: f64,
    /// Temporal profile of the burst within the window.
    pub light_curve: crate::time::LightCurve,
}

impl GrbConfig {
    /// A burst of the given fluence at the given polar angle with default
    /// spectrum, azimuth 0, a 1-second window, and a short-GRB FRED pulse.
    pub fn new(fluence: f64, polar_angle_deg: f64) -> Self {
        GrbConfig {
            fluence,
            polar_angle_deg,
            azimuth_deg: 0.0,
            spectrum: GrbSpectrum::default(),
            duration_s: 1.0,
            light_curve: crate::time::LightCurve::short_grb(),
        }
    }
}

/// The diffuse atmospheric background model: a power-law spectrum arriving
/// from below/limb directions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackgroundConfig {
    /// Time-integrated particle fluence over the exposure window
    /// (particles / cm², over the full sky below the horizon).
    ///
    /// The default is calibrated so a 1 s window yields ≈2.5× as many
    /// reconstructed background rings as a 1 MeV/cm² normally-incident GRB
    /// yields GRB rings, matching the paper's stated 2–3× ratio.
    pub particle_fluence: f64,
    /// Photon index of the background power-law spectrum.
    pub spectral_index: f64,
    /// Minimum background photon energy (MeV).
    pub e_min: f64,
    /// Maximum background photon energy (MeV).
    pub e_max: f64,
    /// Limb-bias shape exponent `k` of the angular distribution
    /// (`density ∝ sin^k θ` over the lower hemisphere).
    pub limb_bias: f64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            particle_fluence: 25.0,
            spectral_index: -2.0,
            e_min: 0.030,
            e_max: 10.0,
            limb_bias: 3.0,
        }
    }
}

/// Extra measurement perturbation used in the robustness study (paper
/// Fig. 10): Gaussian noise with standard deviation `epsilon_percent`% of
/// each spatial/energy value, *not* reflected in the reported sigmas.
/// `dead_channel_fraction` additionally kills that fraction of fiber cells
/// outright (failure injection for "unforeseen properties of the physical
/// instrument").
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PerturbationConfig {
    /// Noise amplitude ε as a percentage of each input's value.
    pub epsilon_percent: f64,
    /// Fraction of fiber cells that silently report nothing (0 disables).
    pub dead_channel_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_detector_has_four_layers() {
        let d = DetectorConfig::default();
        assert_eq!(d.n_layers(), 4);
        assert!(
            d.layer_centers_z.windows(2).all(|w| w[0] > w[1]),
            "top first"
        );
    }

    #[test]
    fn reported_sigmas_positive_and_monotone() {
        let d = DetectorConfig::default();
        assert!(d.reported_sigma_xy() > 0.0);
        assert!(d.reported_sigma_z() > d.reported_sigma_xy());
        let s1 = d.reported_sigma_energy(0.1);
        let s2 = d.reported_sigma_energy(1.0);
        assert!(s2 > s1 && s1 > 0.0);
    }

    #[test]
    fn grb_config_defaults() {
        let g = GrbConfig::new(1.0, 40.0);
        assert_eq!(g.fluence, 1.0);
        assert_eq!(g.polar_angle_deg, 40.0);
        assert_eq!(g.spectrum.beta, -2.35);
        assert_eq!(g.spectrum.e_min, 0.030);
    }

    #[test]
    fn serde_round_trip() {
        let g = GrbConfig::new(2.0, 20.0);
        let s = serde_json::to_string(&g).unwrap();
        let back: GrbConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back.fluence, 2.0);
    }
}
