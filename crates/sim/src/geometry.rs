//! Detector geometry: a stack of square scintillator slabs.
//!
//! The transport code needs two queries: (1) which material segments a ray
//! crosses, in order, and (2) the projected area of the detector normal to
//! an arrival direction, which converts particle fluence into an expected
//! incident count.

use crate::config::DetectorConfig;
use adapt_math::vec3::{UnitVec3, Vec3};

/// Geometric model of the layered detector.
#[derive(Debug, Clone)]
pub struct DetectorGeometry {
    half_width: f64,
    half_thickness: f64,
    layer_centers_z: Vec<f64>,
    /// z of the top of the highest slab.
    z_top: f64,
    /// z of the bottom of the lowest slab.
    z_bottom: f64,
}

/// One contiguous stretch of scintillator along a ray, as parameter
/// interval `[t_enter, t_exit]` with the layer index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaterialSegment {
    pub t_enter: f64,
    pub t_exit: f64,
    pub layer: usize,
}

impl MaterialSegment {
    /// Length of scintillator crossed in this segment.
    pub fn path_length(&self) -> f64 {
        self.t_exit - self.t_enter
    }
}

impl DetectorGeometry {
    /// Build from a detector configuration.
    pub fn new(config: &DetectorConfig) -> Self {
        assert!(
            !config.layer_centers_z.is_empty(),
            "need at least one layer"
        );
        let half_thickness = config.layer_thickness / 2.0;
        let z_top = config
            .layer_centers_z
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            + half_thickness;
        let z_bottom = config
            .layer_centers_z
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            - half_thickness;
        DetectorGeometry {
            half_width: config.half_width,
            half_thickness,
            layer_centers_z: config.layer_centers_z.clone(),
            z_top,
            z_bottom,
        }
    }

    /// Half-extent in x/y.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Top and bottom z of the full stack's bounding box.
    pub fn z_extent(&self) -> (f64, f64) {
        (self.z_bottom, self.z_top)
    }

    /// Radius of a sphere centered at the origin that encloses the whole
    /// stack — used to aim incident rays.
    pub fn bounding_radius(&self) -> f64 {
        let z = self.z_top.abs().max(self.z_bottom.abs());
        (2.0 * self.half_width * self.half_width + z * z).sqrt()
    }

    /// Is `p` inside the scintillator of some layer? Returns the layer.
    pub fn layer_containing(&self, p: Vec3) -> Option<usize> {
        if p.x.abs() > self.half_width || p.y.abs() > self.half_width {
            return None;
        }
        self.layer_centers_z
            .iter()
            .position(|&zc| (p.z - zc).abs() <= self.half_thickness)
    }

    /// The interval of ray parameter `t` (for `p = origin + t * dir`)
    /// inside the x/y footprint of the tiles, or `None` if the ray misses.
    fn footprint_interval(&self, origin: Vec3, dir: Vec3) -> Option<(f64, f64)> {
        let mut t0 = f64::NEG_INFINITY;
        let mut t1 = f64::INFINITY;
        for (o, d) in [(origin.x, dir.x), (origin.y, dir.y)] {
            if d.abs() < 1e-300 {
                if o.abs() > self.half_width {
                    return None;
                }
            } else {
                let ta = (-self.half_width - o) / d;
                let tb = (self.half_width - o) / d;
                let (lo, hi) = if ta < tb { (ta, tb) } else { (tb, ta) };
                t0 = t0.max(lo);
                t1 = t1.min(hi);
            }
        }
        (t0 < t1).then_some((t0, t1))
    }

    /// All scintillator segments crossed by the ray `origin + t*dir` for
    /// `t > t_min`, ordered by increasing `t`.
    pub fn material_segments(
        &self,
        origin: Vec3,
        dir: UnitVec3,
        t_min: f64,
        out: &mut Vec<MaterialSegment>,
    ) {
        out.clear();
        let d = dir.as_vec();
        let Some((fx0, fx1)) = self.footprint_interval(origin, d) else {
            return;
        };
        if d.z.abs() < 1e-12 {
            // horizontal ray: inside at most one layer for the whole span
            if let Some(layer) = self
                .layer_centers_z
                .iter()
                .position(|&zc| (origin.z - zc).abs() <= self.half_thickness)
            {
                let lo = fx0.max(t_min);
                if lo < fx1 {
                    out.push(MaterialSegment {
                        t_enter: lo,
                        t_exit: fx1,
                        layer,
                    });
                }
            }
            return;
        }
        for (layer, &zc) in self.layer_centers_z.iter().enumerate() {
            let ta = (zc - self.half_thickness - origin.z) / d.z;
            let tb = (zc + self.half_thickness - origin.z) / d.z;
            let (lo, hi) = if ta < tb { (ta, tb) } else { (tb, ta) };
            let lo = lo.max(fx0).max(t_min);
            let hi = hi.min(fx1);
            if lo < hi {
                out.push(MaterialSegment {
                    t_enter: lo,
                    t_exit: hi,
                    layer,
                });
            }
        }
        out.sort_by(|a, b| a.t_enter.partial_cmp(&b.t_enter).unwrap());
    }

    /// The area of the detector stack's silhouette as seen from direction
    /// `dir` (cm²): for a convex stack of coaxial slabs this is the
    /// projected bounding box of the stack, which slightly overestimates
    /// (includes the inter-layer gaps); rays through gaps simply fail to
    /// interact, so the overestimate is corrected by transport itself.
    pub fn projected_area(&self, dir: UnitVec3) -> f64 {
        let d = dir.as_vec();
        let w = 2.0 * self.half_width;
        let h = self.z_top - self.z_bottom;
        // box faces: two w×w (normal z), two w×h (normal x), two w×h (normal y)
        w * w * d.z.abs() + w * h * d.x.abs() + w * h * d.y.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use adapt_math::angles::deg_to_rad;

    fn geom() -> DetectorGeometry {
        DetectorGeometry::new(&DetectorConfig::default())
    }

    #[test]
    fn vertical_ray_crosses_all_layers() {
        let g = geom();
        let mut segs = Vec::new();
        g.material_segments(
            Vec3::new(0.0, 0.0, 50.0),
            UnitVec3::from_spherical(std::f64::consts::PI, 0.0), // straight down
            0.0,
            &mut segs,
        );
        assert_eq!(segs.len(), 4);
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.layer, i, "top layer first for a downward ray");
            assert!((s.path_length() - 1.5).abs() < 1e-9);
        }
        // ordered
        assert!(segs.windows(2).all(|w| w[0].t_exit <= w[1].t_enter + 1e-12));
    }

    #[test]
    fn oblique_ray_longer_paths() {
        let g = geom();
        let mut segs = Vec::new();
        let theta = deg_to_rad(180.0 - 40.0); // downward, 40 deg off vertical
        g.material_segments(
            Vec3::new(0.0, 0.0, 10.0),
            UnitVec3::from_spherical(theta, 0.3),
            0.0,
            &mut segs,
        );
        assert!(!segs.is_empty());
        let expect = 1.5 / deg_to_rad(40.0).cos();
        assert!((segs[0].path_length() - expect).abs() < 1e-9);
    }

    #[test]
    fn miss_returns_empty() {
        let g = geom();
        let mut segs = Vec::new();
        g.material_segments(
            Vec3::new(100.0, 0.0, 50.0),
            UnitVec3::from_spherical(std::f64::consts::PI, 0.0),
            0.0,
            &mut segs,
        );
        assert!(segs.is_empty());
    }

    #[test]
    fn horizontal_ray_single_layer() {
        let g = geom();
        let mut segs = Vec::new();
        // through the center of layer 1 (z = 2.0)
        g.material_segments(
            Vec3::new(-100.0, 0.0, 2.0),
            UnitVec3::PLUS_X,
            0.0,
            &mut segs,
        );
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].layer, 1);
        assert!((segs[0].path_length() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn t_min_truncates() {
        let g = geom();
        let mut segs = Vec::new();
        let origin = Vec3::new(0.0, 0.0, 6.0); // center of top layer
        g.material_segments(
            origin,
            UnitVec3::from_spherical(std::f64::consts::PI, 0.0),
            0.0,
            &mut segs,
        );
        // starting inside layer 0: first segment starts at t=0 (clamped)
        assert_eq!(segs[0].layer, 0);
        assert!((segs[0].t_enter - 0.0).abs() < 1e-12);
        assert!((segs[0].path_length() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn layer_containing_works() {
        let g = geom();
        assert_eq!(g.layer_containing(Vec3::new(0.0, 0.0, 6.0)), Some(0));
        assert_eq!(g.layer_containing(Vec3::new(0.0, 0.0, -6.7)), Some(3));
        assert_eq!(g.layer_containing(Vec3::new(0.0, 0.0, 0.0)), None);
        assert_eq!(g.layer_containing(Vec3::new(30.0, 0.0, 6.0)), None);
    }

    #[test]
    fn projected_area_normal_is_footprint() {
        let g = geom();
        let a = g.projected_area(UnitVec3::PLUS_Z);
        assert!((a - 1600.0).abs() < 1e-9);
        // side view: width x stack height
        let side = g.projected_area(UnitVec3::PLUS_X);
        assert!((side - 40.0 * 13.5).abs() < 1e-9);
    }

    #[test]
    fn bounding_radius_encloses() {
        let g = geom();
        let r = g.bounding_radius();
        assert!(r >= 20.0 * 2f64.sqrt());
        let (zb, zt) = g.z_extent();
        assert!(r >= zt.abs() && r >= zb.abs());
    }
}
