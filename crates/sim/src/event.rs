//! Event data model: true interactions, measured hits, and the truth
//! bookkeeping needed to build training labels.
//!
//! Terminology follows the paper (§II-B): a single gamma-ray photon gives
//! rise to an *event*, which is the list of its interactions (*hits*) in the
//! detector. Each hit carries a 3-D position and a deposited energy; the
//! measured variants additionally carry the detector's *reported*
//! uncertainties, which are exactly the quantities propagation-of-error
//! consumes (and mis-trusts).

use adapt_math::vec3::{UnitVec3, Vec3};
use serde::{Deserialize, Serialize};

/// The origin of a simulated particle, i.e. the classification label the
/// background network is trained to recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParticleOrigin {
    /// A photon from the gamma-ray burst under study.
    Grb,
    /// An atmospheric/diffuse background particle.
    Background,
}

impl ParticleOrigin {
    /// True if this is a background particle.
    pub fn is_background(self) -> bool {
        matches!(self, ParticleOrigin::Background)
    }
}

/// A single true interaction of the photon inside a scintillator tile.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrueHit {
    /// Interaction position in detector coordinates (cm).
    pub position: Vec3,
    /// Energy deposited at this interaction (MeV).
    pub energy: f64,
    /// Index of the detector layer containing the interaction.
    pub layer: usize,
    /// Kind of interaction that produced the deposit.
    pub kind: InteractionKind,
}

/// Physical process at a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InteractionKind {
    /// Compton scattering: partial energy deposit, photon continues.
    Compton,
    /// Photoelectric absorption: the photon's full remaining energy is
    /// deposited and the history ends.
    Photoabsorption,
    /// Pair production: the photon converts; the pair's kinetic energy
    /// deposits locally and two 511 keV annihilation photons continue.
    PairProduction,
}

/// The full truth record of one simulated photon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrueEvent {
    /// Where the particle came from (GRB vs background).
    pub origin: ParticleOrigin,
    /// Unit vector pointing from the detector *toward the source* (the
    /// photon travels along `-source_dir`).
    pub source_dir: UnitVec3,
    /// Energy of the photon before entering the detector (MeV).
    pub incident_energy: f64,
    /// Interactions in true chronological order.
    pub hits: Vec<TrueHit>,
    /// True cosine of the first Compton scattering angle, when the history
    /// begins with a Compton scatter followed by at least one more hit.
    pub true_eta: Option<f64>,
}

impl TrueEvent {
    /// Total energy deposited in the detector.
    pub fn deposited_energy(&self) -> f64 {
        self.hits.iter().map(|h| h.energy).sum()
    }

    /// True if the photon deposited its entire incident energy
    /// (fully contained history).
    pub fn fully_contained(&self) -> bool {
        (self.deposited_energy() - self.incident_energy).abs() < 1e-9
    }
}

/// A hit as reported by the detector front-end: quantized, smeared, and
/// accompanied by the front-end's *claimed* 1-sigma uncertainties.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeasuredHit {
    /// Measured position (cm).
    pub position: Vec3,
    /// Measured deposited energy (MeV).
    pub energy: f64,
    /// Reported per-axis position uncertainty (cm).
    pub sigma_position: Vec3,
    /// Reported energy uncertainty (MeV).
    pub sigma_energy: f64,
    /// Layer index (known exactly from which tile fired).
    pub layer: usize,
}

/// A complete measured event with its truth attached (truth is used only
/// for labels and for oracle experiments, never by the pipeline itself).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    /// Hits ordered by true interaction time. The reconstruction stage must
    /// *not* rely on this ordering (real hardware does not know it); the
    /// sequencer re-derives an ordering from kinematics.
    pub hits: Vec<MeasuredHit>,
    /// Simulation truth for labeling.
    pub truth: TrueEvent,
    /// Arrival time within the exposure window (s). Drives the burst
    /// trigger and the pileup study.
    pub arrival_time: f64,
}

impl Event {
    /// Total measured deposited energy.
    pub fn total_energy(&self) -> f64 {
        self.hits.iter().map(|h| h.energy).sum()
    }

    /// Quadrature sum of the reported per-hit energy uncertainties — the
    /// reported uncertainty of [`Event::total_energy`].
    pub fn total_energy_sigma(&self) -> f64 {
        self.hits
            .iter()
            .map(|h| h.sigma_energy * h.sigma_energy)
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(e: f64) -> TrueHit {
        TrueHit {
            position: Vec3::ZERO,
            energy: e,
            layer: 0,
            kind: InteractionKind::Compton,
        }
    }

    #[test]
    fn deposited_energy_sums_hits() {
        let ev = TrueEvent {
            origin: ParticleOrigin::Grb,
            source_dir: UnitVec3::PLUS_Z,
            incident_energy: 1.0,
            hits: vec![hit(0.4), hit(0.6)],
            true_eta: Some(0.5),
        };
        assert!((ev.deposited_energy() - 1.0).abs() < 1e-12);
        assert!(ev.fully_contained());
    }

    #[test]
    fn escape_is_not_contained() {
        let ev = TrueEvent {
            origin: ParticleOrigin::Background,
            source_dir: UnitVec3::PLUS_Z,
            incident_energy: 1.0,
            hits: vec![hit(0.4)],
            true_eta: None,
        };
        assert!(!ev.fully_contained());
        assert!(ev.origin.is_background());
    }

    #[test]
    fn measured_totals() {
        let mh = |e: f64, s: f64| MeasuredHit {
            position: Vec3::ZERO,
            energy: e,
            sigma_position: Vec3::new(0.1, 0.1, 0.4),
            sigma_energy: s,
            layer: 0,
        };
        let ev = Event {
            arrival_time: 0.0,
            hits: vec![mh(0.3, 0.03), mh(0.7, 0.04)],
            truth: TrueEvent {
                origin: ParticleOrigin::Grb,
                source_dir: UnitVec3::PLUS_Z,
                incident_energy: 1.0,
                hits: vec![],
                true_eta: None,
            },
        };
        assert!((ev.total_energy() - 1.0).abs() < 1e-12);
        let want = (0.03f64 * 0.03 + 0.04 * 0.04).sqrt();
        assert!((ev.total_energy_sigma() - want).abs() < 1e-12);
    }
}
