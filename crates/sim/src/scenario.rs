//! Hostile-sky scenario layer: composable anomalies stacked on a
//! [`StreamingSource`](crate::stream::StreamingSource).
//!
//! Every scenario exercised before this module was "quiet background +
//! clean injected GRB". Real balloon skies are hostile: bursts overlap,
//! magnetar (SGR) flares arrive in trains, solar flares ramp the soft
//! background over minutes, SAA-like passages step or spike the particle
//! rate, Earth occultation dips it, and the detector itself drops out or
//! saturates into dead-time. Each of those is a declarative
//! [`ScenarioComponent`]; a [`Scenario`] composes any number of them.
//!
//! Components act through exactly three deterministic channels:
//!
//! 1. **Rate modifiers** — multiplicative factors on the background
//!    intensity λ(t) (ramps, steps, spikes, dips). The product over
//!    components is bounded by [`Scenario::rate_multiplier_bound`], which
//!    the source folds into its thinning ceiling so acceptance
//!    probabilities never clip and the realized process stays an unbiased
//!    nonhomogeneous Poisson draw.
//! 2. **Extra photon populations** — burst-like components (overlapping
//!    bursts, SGR flare trains) expand into ordinary
//!    [`BurstInjection`]s via [`Scenario::injections`], flowing through
//!    the same pre-generation path as scheduled GRBs.
//! 3. **Loss filters** — detector dropouts thin both background
//!    acceptance and pre-generated burst photons by a survival
//!    probability; dead-time suppresses any event arriving within `τ` of
//!    the previously *emitted* event, applied at the merged-stream level.
//!
//! All three channels draw from counter-derived or construction-time RNG
//! streams, so a scenario-bearing stream replays bit-identically from the
//! same seed and survives `skip_until` checkpoint restores unchanged.

use crate::config::GrbConfig;
use crate::stream::BurstInjection;
use crate::time::LightCurve;
use serde::{Deserialize, Serialize};

/// One declarative hostile-sky ingredient. See the module docs for the
/// three channels a component may act through.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ScenarioComponent {
    /// Two bursts separated by `separation_s` — back-to-back when the
    /// separation is below the trigger's refractory window, overlapping
    /// when it is below the burst duration.
    BackToBackBursts {
        /// Onset of the first burst (s from stream start).
        t_onset_s: f64,
        /// Gap between the two onsets (s).
        separation_s: f64,
        /// Fluence of each burst (MeV/cm²).
        fluence: f64,
        /// Polar angle of both bursts (deg from zenith).
        polar_deg: f64,
    },
    /// A magnetar-style train of short soft flares at a fixed cadence.
    SgrFlareTrain {
        /// Onset of the first flare (s from stream start).
        t_start_s: f64,
        /// Cadence between flare onsets (s).
        period_s: f64,
        /// Number of flares in the train.
        flares: u32,
        /// Fluence of each flare (MeV/cm²).
        fluence: f64,
        /// Polar angle of the source (deg from zenith).
        polar_deg: f64,
    },
    /// A solar-flare style background ramp: the rate multiplier rises
    /// linearly from 1 to `peak_multiplier` over `rise_s`, holds for
    /// `hold_s`, then falls back linearly over `fall_s`.
    SolarFlareRamp {
        /// Ramp start (s from stream start).
        t_start_s: f64,
        /// Linear rise time (s).
        rise_s: f64,
        /// Plateau duration at the peak (s).
        hold_s: f64,
        /// Linear fall time (s).
        fall_s: f64,
        /// Peak rate multiplier (≥ 1).
        peak_multiplier: f64,
    },
    /// An SAA-passage style background step: multiplier applies over
    /// `[t_start_s, t_end_s)`.
    SaaStep {
        /// Step start (s from stream start).
        t_start_s: f64,
        /// Step end (s from stream start).
        t_end_s: f64,
        /// Rate multiplier inside the interval (≥ 1).
        multiplier: f64,
    },
    /// A short Gaussian particle spike centred at `t_s`.
    SaaSpike {
        /// Spike centre (s from stream start).
        t_s: f64,
        /// Gaussian σ of the spike profile (s).
        sigma_s: f64,
        /// Peak rate multiplier at the centre (≥ 1).
        multiplier: f64,
    },
    /// An Earth-occultation dip: the background multiplier drops to
    /// `floor` (0 ≤ floor ≤ 1) over `[t_start_s, t_end_s)`.
    OccultationDip {
        /// Dip start (s from stream start).
        t_start_s: f64,
        /// Dip end (s from stream start).
        t_end_s: f64,
        /// Rate multiplier inside the dip (0–1).
        floor: f64,
    },
    /// A detector dropout: every photon (background *and* burst) in
    /// `[t_start_s, t_end_s)` is lost with probability `drop_fraction`.
    DetectorDropout {
        /// Outage start (s from stream start).
        t_start_s: f64,
        /// Outage end (s from stream start).
        t_end_s: f64,
        /// Per-event loss probability inside the outage (0–1).
        drop_fraction: f64,
    },
    /// Non-paralyzable dead-time: any event arriving within `tau_s` of
    /// the previously emitted event is suppressed.
    DeadTime {
        /// Dead-time constant (s).
        tau_s: f64,
    },
}

impl ScenarioComponent {
    /// Multiplicative rate factor this component applies at stream time
    /// `t_s`. Components without a rate channel return 1.
    pub fn rate_factor_at(&self, t_s: f64) -> f64 {
        match *self {
            ScenarioComponent::SolarFlareRamp {
                t_start_s,
                rise_s,
                hold_s,
                fall_s,
                peak_multiplier,
            } => {
                let dt = t_s - t_start_s;
                let peak = peak_multiplier.max(1.0);
                if dt < 0.0 {
                    1.0
                } else if dt < rise_s {
                    1.0 + (peak - 1.0) * (dt / rise_s.max(1e-9))
                } else if dt < rise_s + hold_s {
                    peak
                } else if dt < rise_s + hold_s + fall_s {
                    let fell = (dt - rise_s - hold_s) / fall_s.max(1e-9);
                    peak - (peak - 1.0) * fell
                } else {
                    1.0
                }
            }
            ScenarioComponent::SaaStep {
                t_start_s,
                t_end_s,
                multiplier,
            } if t_s >= t_start_s && t_s < t_end_s => multiplier.max(0.0),
            ScenarioComponent::SaaSpike {
                t_s: centre,
                sigma_s,
                multiplier,
            } => {
                let z = (t_s - centre) / sigma_s.max(1e-9);
                1.0 + (multiplier.max(1.0) - 1.0) * (-0.5 * z * z).exp()
            }
            ScenarioComponent::OccultationDip {
                t_start_s,
                t_end_s,
                floor,
            } if t_s >= t_start_s && t_s < t_end_s => floor.clamp(0.0, 1.0),
            _ => 1.0,
        }
    }

    /// A guaranteed upper bound on [`rate_factor_at`](Self::rate_factor_at)
    /// over all times.
    pub fn rate_factor_bound(&self) -> f64 {
        match *self {
            ScenarioComponent::SolarFlareRamp {
                peak_multiplier, ..
            } => peak_multiplier.max(1.0),
            ScenarioComponent::SaaStep { multiplier, .. } => multiplier.max(1.0),
            ScenarioComponent::SaaSpike { multiplier, .. } => multiplier.max(1.0),
            _ => 1.0,
        }
    }

    /// Per-event survival probability this component applies at `t_s`
    /// (dropout channel). Components without a loss window return 1.
    pub fn survival_at(&self, t_s: f64) -> f64 {
        match *self {
            ScenarioComponent::DetectorDropout {
                t_start_s,
                t_end_s,
                drop_fraction,
            } if t_s >= t_start_s && t_s < t_end_s => 1.0 - drop_fraction.clamp(0.0, 1.0),
            _ => 1.0,
        }
    }

    /// Burst injections this component expands into (photon-population
    /// channel). An SGR flare is modelled as a soft, short top-hat pulse.
    pub fn injections(&self) -> Vec<BurstInjection> {
        match *self {
            ScenarioComponent::BackToBackBursts {
                t_onset_s,
                separation_s,
                fluence,
                polar_deg,
            } => {
                let mut second = GrbConfig::new(fluence, polar_deg);
                second.azimuth_deg = 180.0;
                vec![
                    BurstInjection {
                        t_onset_s,
                        grb: GrbConfig::new(fluence, polar_deg),
                    },
                    BurstInjection {
                        t_onset_s: t_onset_s + separation_s,
                        grb: second,
                    },
                ]
            }
            ScenarioComponent::SgrFlareTrain {
                t_start_s,
                period_s,
                flares,
                fluence,
                polar_deg,
            } => (0..flares)
                .map(|k| {
                    let mut flare = GrbConfig::new(fluence, polar_deg);
                    flare.duration_s = 0.5;
                    flare.spectrum.e_peak = 0.06; // soft magnetar-like spectrum
                    flare.spectrum.e_max = 1.0;
                    flare.light_curve = LightCurve::TopHat {
                        start: 0.0,
                        width: 0.25,
                    };
                    BurstInjection {
                        t_onset_s: t_start_s + period_s * k as f64,
                        grb: flare,
                    }
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Short machine-readable kind tag (matrix cell labels, forensics).
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioComponent::BackToBackBursts { .. } => "back-to-back-bursts",
            ScenarioComponent::SgrFlareTrain { .. } => "sgr-flare-train",
            ScenarioComponent::SolarFlareRamp { .. } => "solar-flare-ramp",
            ScenarioComponent::SaaStep { .. } => "saa-step",
            ScenarioComponent::SaaSpike { .. } => "saa-spike",
            ScenarioComponent::OccultationDip { .. } => "occultation-dip",
            ScenarioComponent::DetectorDropout { .. } => "detector-dropout",
            ScenarioComponent::DeadTime { .. } => "dead-time",
        }
    }
}

/// A composition of [`ScenarioComponent`]s applied to one stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Scenario {
    /// The stacked components; order is irrelevant (channels compose
    /// multiplicatively / by union).
    pub components: Vec<ScenarioComponent>,
}

impl Scenario {
    /// The empty (quiet-sky) scenario.
    pub fn quiet() -> Self {
        Scenario::default()
    }

    /// Add a component (builder style).
    pub fn with(mut self, component: ScenarioComponent) -> Self {
        self.components.push(component);
        self
    }

    /// True when no component is active — the stream behaves exactly as
    /// an unmodified [`StreamingSource`](crate::stream::StreamingSource).
    pub fn is_quiet(&self) -> bool {
        self.components.is_empty()
    }

    /// Product of all components' rate factors at `t_s`.
    pub fn rate_multiplier_at(&self, t_s: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.rate_factor_at(t_s))
            .product()
    }

    /// Guaranteed upper bound on [`rate_multiplier_at`](Self::rate_multiplier_at)
    /// over all times: the product of per-component analytic maxima. The
    /// thinning ceiling multiplies by this so acceptance never clips.
    pub fn rate_multiplier_bound(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.rate_factor_bound())
            .product()
    }

    /// Product of all components' survival probabilities at `t_s`
    /// (detector dropouts). Always in `[0, 1]`.
    pub fn survival_at(&self, t_s: f64) -> f64 {
        self.components.iter().map(|c| c.survival_at(t_s)).product()
    }

    /// True when any component has a loss window (so the source needs a
    /// dedicated drop RNG stream for pre-generated burst photons).
    pub fn has_dropouts(&self) -> bool {
        self.components
            .iter()
            .any(|c| matches!(c, ScenarioComponent::DetectorDropout { .. }))
    }

    /// The effective dead-time constant: the largest `tau_s` across
    /// [`DeadTime`](ScenarioComponent::DeadTime) components, if any.
    pub fn dead_time_s(&self) -> Option<f64> {
        self.components
            .iter()
            .filter_map(|c| match *c {
                ScenarioComponent::DeadTime { tau_s } => Some(tau_s),
                _ => None,
            })
            .fold(None, |acc, tau| Some(acc.map_or(tau, |a: f64| a.max(tau))))
    }

    /// All burst injections the components expand into, onset-ordered.
    pub fn injections(&self) -> Vec<BurstInjection> {
        let mut all: Vec<BurstInjection> = self
            .components
            .iter()
            .flat_map(|c| c.injections())
            .collect();
        all.sort_by(|a, b| a.t_onset_s.total_cmp(&b.t_onset_s));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_scenario_is_identity() {
        let s = Scenario::quiet();
        assert!(s.is_quiet());
        assert_eq!(s.rate_multiplier_at(12.0), 1.0);
        assert_eq!(s.rate_multiplier_bound(), 1.0);
        assert_eq!(s.survival_at(12.0), 1.0);
        assert!(s.dead_time_s().is_none());
        assert!(s.injections().is_empty());
    }

    #[test]
    fn ramp_profile_rises_holds_falls() {
        let ramp = ScenarioComponent::SolarFlareRamp {
            t_start_s: 10.0,
            rise_s: 10.0,
            hold_s: 5.0,
            fall_s: 10.0,
            peak_multiplier: 3.0,
        };
        assert_eq!(ramp.rate_factor_at(0.0), 1.0);
        assert!((ramp.rate_factor_at(15.0) - 2.0).abs() < 1e-12);
        assert_eq!(ramp.rate_factor_at(22.0), 3.0);
        assert!((ramp.rate_factor_at(30.0) - 2.0).abs() < 1e-12);
        assert_eq!(ramp.rate_factor_at(60.0), 1.0);
        assert_eq!(ramp.rate_factor_bound(), 3.0);
    }

    #[test]
    fn composition_multiplies_and_bound_dominates() {
        let s = Scenario::quiet()
            .with(ScenarioComponent::SaaStep {
                t_start_s: 0.0,
                t_end_s: 100.0,
                multiplier: 2.0,
            })
            .with(ScenarioComponent::SaaSpike {
                t_s: 50.0,
                sigma_s: 2.0,
                multiplier: 4.0,
            })
            .with(ScenarioComponent::OccultationDip {
                t_start_s: 40.0,
                t_end_s: 60.0,
                floor: 0.25,
            });
        let bound = s.rate_multiplier_bound();
        for i in 0..=1000 {
            let t = 0.1 * i as f64;
            let m = s.rate_multiplier_at(t);
            assert!(m <= bound + 1e-12, "m({t}) = {m} exceeds bound {bound}");
            assert!(m >= 0.0);
        }
        // spike centre inside the dip: 2 · 4 · 0.25
        assert!((s.rate_multiplier_at(50.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flare_train_expands_to_cadenced_injections() {
        let s = Scenario::quiet().with(ScenarioComponent::SgrFlareTrain {
            t_start_s: 5.0,
            period_s: 3.0,
            flares: 4,
            fluence: 0.8,
            polar_deg: 30.0,
        });
        let inj = s.injections();
        assert_eq!(inj.len(), 4);
        let onsets: Vec<f64> = inj.iter().map(|i| i.t_onset_s).collect();
        assert_eq!(onsets, vec![5.0, 8.0, 11.0, 14.0]);
        assert!(inj.iter().all(|i| i.grb.duration_s == 0.5));
    }

    #[test]
    fn dropout_and_dead_time_channels() {
        let s = Scenario::quiet()
            .with(ScenarioComponent::DetectorDropout {
                t_start_s: 10.0,
                t_end_s: 20.0,
                drop_fraction: 0.75,
            })
            .with(ScenarioComponent::DeadTime { tau_s: 0.002 });
        assert!(s.has_dropouts());
        assert_eq!(s.survival_at(5.0), 1.0);
        assert!((s.survival_at(15.0) - 0.25).abs() < 1e-12);
        assert_eq!(s.dead_time_s(), Some(0.002));
        assert_eq!(s.rate_multiplier_bound(), 1.0);
    }
}
