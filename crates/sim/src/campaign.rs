//! Burst-window simulation: the workload generator for every experiment.
//!
//! A *burst simulation* draws the Poisson-distributed number of GRB photons
//! and background particles expected in the exposure window, transports
//! each through the detector, applies the readout response, and returns the
//! surviving measured events. Photon transport is embarrassingly parallel,
//! so events are generated with rayon using one counter-derived RNG stream
//! per particle — results are bit-identical regardless of thread count.

use crate::config::{BackgroundConfig, DetectorConfig, GrbConfig, PerturbationConfig};
use crate::event::{Event, ParticleOrigin};
use crate::geometry::DetectorGeometry;
use crate::physics::Material;
use crate::response::DetectorResponse;
use crate::source::{BackgroundSource, GrbSource};
use crate::time::LightCurve;
use crate::transport::Transport;
use adapt_math::sampling::poisson;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// A fully-configured burst scenario, ready to simulate.
#[derive(Debug, Clone)]
pub struct BurstSimulation {
    transport: Transport,
    response: DetectorResponse,
    grb: GrbSource,
    background: BackgroundSource,
    grb_light_curve: LightCurve,
    duration_s: f64,
}

/// The result of one simulated burst window.
#[derive(Debug, Clone)]
pub struct BurstData {
    /// All measured events (GRB and background interleaved in generation
    /// order; the pipeline must not rely on any ordering).
    pub events: Vec<Event>,
    /// Number of GRB photons aimed at the detector (before interaction).
    pub n_grb_incident: u64,
    /// Number of background particles aimed (before interaction).
    pub n_background_incident: u64,
}

impl BurstData {
    /// Count of measured events by origin: `(grb, background)`.
    pub fn counts_by_origin(&self) -> (usize, usize) {
        let grb = self
            .events
            .iter()
            .filter(|e| e.truth.origin == ParticleOrigin::Grb)
            .count();
        (grb, self.events.len() - grb)
    }
}

impl BurstSimulation {
    /// Assemble a scenario from configuration pieces.
    pub fn new(
        detector: DetectorConfig,
        grb: GrbConfig,
        background: BackgroundConfig,
        perturbation: PerturbationConfig,
    ) -> Self {
        let geometry = DetectorGeometry::new(&detector);
        let material = Material::new(detector.electron_density, detector.pe_crossover_energy);
        let transport = Transport::new(geometry, material, detector.transport_cutoff);
        let response = DetectorResponse::with_perturbation(detector, perturbation);
        BurstSimulation {
            transport,
            response,
            grb: GrbSource::new(&grb),
            background: BackgroundSource::new(&background),
            grb_light_curve: grb.light_curve.clone(),
            duration_s: grb.duration_s,
        }
    }

    /// The exposure window (s).
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Convenience constructor with default detector/background and no
    /// perturbation.
    pub fn with_defaults(grb: GrbConfig) -> Self {
        Self::new(
            DetectorConfig::default(),
            grb,
            BackgroundConfig::default(),
            PerturbationConfig::default(),
        )
    }

    /// The GRB source of this scenario.
    pub fn grb(&self) -> &GrbSource {
        &self.grb
    }

    /// The transport engine (shared with tests and diagnostics).
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// Simulate one burst window. `seed` fully determines the output.
    pub fn simulate(&self, seed: u64) -> BurstData {
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        let disc_r = self.transport.geometry().bounding_radius();
        let n_grb = poisson(&mut master, self.grb.expected_photons_on_disc(disc_r));
        let n_bkg = poisson(
            &mut master,
            self.background.expected_particles_on_disc(disc_r),
        );
        // decorrelate the two particle streams from the master draw
        let grb_stream: u64 = master.gen();
        let bkg_stream: u64 = master.gen();

        let grb_events: Vec<Event> = (0..n_grb)
            .into_par_iter()
            .filter_map(|i| self.grb_event(grb_stream, i))
            .collect();
        let bkg_events: Vec<Event> = (0..n_bkg)
            .into_par_iter()
            .filter_map(|i| self.background_event(bkg_stream, i))
            .collect();

        let mut events = grb_events;
        events.extend(bkg_events);
        BurstData {
            events,
            n_grb_incident: n_grb,
            n_background_incident: n_bkg,
        }
    }

    /// As [`simulate`](Self::simulate) but sequential — used by benches to
    /// quantify the rayon speedup.
    pub fn simulate_sequential(&self, seed: u64) -> BurstData {
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        let disc_r = self.transport.geometry().bounding_radius();
        let n_grb = poisson(&mut master, self.grb.expected_photons_on_disc(disc_r));
        let n_bkg = poisson(
            &mut master,
            self.background.expected_particles_on_disc(disc_r),
        );
        let grb_stream: u64 = master.gen();
        let bkg_stream: u64 = master.gen();
        let mut events = Vec::new();
        events.extend((0..n_grb).filter_map(|i| self.grb_event(grb_stream, i)));
        events.extend((0..n_bkg).filter_map(|i| self.background_event(bkg_stream, i)));
        BurstData {
            events,
            n_grb_incident: n_grb,
            n_background_incident: n_bkg,
        }
    }

    fn particle_rng(stream: u64, index: u64) -> ChaCha8Rng {
        // SplitMix64-style mix of (stream, index) for independent streams
        let mut z = stream ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
    }

    /// Expected incident GRB photons on the transport disc for this
    /// scenario (the Poisson mean used by [`simulate`](Self::simulate)).
    pub fn expected_grb_photons(&self) -> f64 {
        let disc_r = self.transport.geometry().bounding_radius();
        self.grb.expected_photons_on_disc(disc_r)
    }

    /// Expected incident background particles on the transport disc for
    /// this scenario's exposure window.
    pub fn expected_background_particles(&self) -> f64 {
        let disc_r = self.transport.geometry().bounding_radius();
        self.background.expected_particles_on_disc(disc_r)
    }

    /// Transport GRB photon `index` of decorrelated stream `stream` and
    /// return the measured event, if it survives. This is the exact
    /// per-particle path [`simulate`](Self::simulate) runs — the streaming
    /// source ([`crate::stream::StreamingSource`]) calls it too, so batch
    /// and streaming generation share one code path. The per-particle RNG
    /// is derived only from `(stream, index)`, so calls are independent
    /// and order-free.
    pub fn grb_event(&self, stream: u64, index: u64) -> Option<Event> {
        let mut rng = Self::particle_rng(stream, index);
        let source_dir = self.grb.direction;
        let travel = source_dir.flipped();
        let energy = self.grb.spectrum.sample(&mut rng);
        let entry = self.transport.sample_entry_point(&mut rng, travel);
        let truth = self.transport.trace(
            &mut rng,
            entry,
            travel,
            energy,
            ParticleOrigin::Grb,
            source_dir,
        )?;
        let mut event = self.response.measure(&mut rng, &truth)?;
        event.arrival_time = self.grb_light_curve.sample(&mut rng, self.duration_s);
        Some(event)
    }

    /// Transport background particle `index` of decorrelated stream
    /// `stream`; the per-particle RNG offsets the index so GRB and
    /// background streams never collide. See
    /// [`grb_event`](Self::grb_event) for the sharing contract.
    pub fn background_event(&self, stream: u64, index: u64) -> Option<Event> {
        let mut rng = Self::particle_rng(stream, index.wrapping_add(0x8000_0000_0000_0000));
        let (origin_dir, energy) = self.background.sample(&mut rng);
        let travel = origin_dir.flipped();
        let entry = self.transport.sample_entry_point(&mut rng, travel);
        let truth = self.transport.trace(
            &mut rng,
            entry,
            travel,
            energy,
            ParticleOrigin::Background,
            origin_dir,
        )?;
        let mut event = self.response.measure(&mut rng, &truth)?;
        event.arrival_time = LightCurve::Constant.sample(&mut rng, self.duration_s);
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_deterministic_and_parallel_matches_sequential() {
        let sim = BurstSimulation::with_defaults(GrbConfig::new(0.5, 0.0));
        let a = sim.simulate(7);
        let b = sim.simulate(7);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.n_grb_incident, b.n_grb_incident);
        let seq = sim.simulate_sequential(7);
        assert_eq!(a.events.len(), seq.events.len());
        // same first event content
        if let (Some(x), Some(y)) = (a.events.first(), seq.events.first()) {
            assert_eq!(x.hits.len(), y.hits.len());
            assert!((x.total_energy() - y.total_energy()).abs() < 1e-12);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let sim = BurstSimulation::with_defaults(GrbConfig::new(0.5, 0.0));
        let a = sim.simulate(1);
        let b = sim.simulate(2);
        // event counts are Poisson: overwhelmingly likely to differ in
        // content; compare a robust digest
        let digest = |d: &BurstData| d.events.iter().map(|e| e.total_energy()).sum::<f64>();
        assert_ne!(digest(&a), digest(&b));
    }

    #[test]
    fn both_populations_present_at_nominal_fluence() {
        let sim = BurstSimulation::with_defaults(GrbConfig::new(1.0, 0.0));
        let data = sim.simulate(3);
        let (grb, bkg) = data.counts_by_origin();
        assert!(grb > 50, "expected substantial GRB events, got {grb}");
        assert!(bkg > 50, "expected substantial background, got {bkg}");
    }

    #[test]
    fn fluence_scales_grb_population() {
        let lo = BurstSimulation::with_defaults(GrbConfig::new(0.25, 0.0)).simulate(5);
        let hi = BurstSimulation::with_defaults(GrbConfig::new(2.0, 0.0)).simulate(5);
        let (grb_lo, _) = lo.counts_by_origin();
        let (grb_hi, _) = hi.counts_by_origin();
        assert!(
            grb_hi as f64 > 4.0 * grb_lo.max(1) as f64,
            "lo {grb_lo}, hi {grb_hi}"
        );
    }

    #[test]
    fn oblique_burst_still_detected() {
        let sim = BurstSimulation::with_defaults(GrbConfig::new(1.0, 60.0));
        let data = sim.simulate(9);
        let (grb, _) = data.counts_by_origin();
        assert!(grb > 20, "oblique burst produced only {grb} events");
    }
}
