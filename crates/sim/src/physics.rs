//! Photon interaction physics: Klein–Nishina Compton scattering and a
//! photoelectric absorption model.
//!
//! Cross sections are expressed as linear attenuation coefficients
//! (1/cm) in the scintillator. Compton scattering uses the exact
//! Klein–Nishina total cross section and rejection sampling of the
//! differential cross section; photoelectric absorption uses the standard
//! `E^-3` scaling pinned to the material's Compton/photoelectric crossover
//! energy (≈0.3 MeV for CsI); pair production follows the Bethe–Heitler
//! logarithmic rise above its 1.022 MeV threshold, pinned to contribute
//! half of the Compton attenuation at 10 MeV (the CsI-like regime).

use adapt_math::ELECTRON_REST_MEV;
use rand::Rng;

/// Thomson cross section (cm² per electron).
pub const SIGMA_THOMSON: f64 = 6.652_458_7e-25;

/// The exact Klein–Nishina total cross section per electron (cm²) at
/// photon energy `e_mev`.
pub fn klein_nishina_total(e_mev: f64) -> f64 {
    assert!(e_mev > 0.0, "photon energy must be positive");
    let k = e_mev / ELECTRON_REST_MEV;
    if k < 1e-6 {
        // Thomson limit with first-order correction sigma ≈ sigma_T (1 - 2k)
        return SIGMA_THOMSON * (1.0 - 2.0 * k);
    }
    let k2 = k * k;
    let one_2k = 1.0 + 2.0 * k;
    let ln_term = one_2k.ln();
    let part1 = (1.0 + k) / (k2 * k) * (2.0 * k * (1.0 + k) / one_2k - ln_term);
    let part2 = ln_term / (2.0 * k);
    let part3 = (1.0 + 3.0 * k) / (one_2k * one_2k);
    0.75 * SIGMA_THOMSON * (part1 + part2 - part3)
}

/// Threshold for electron-positron pair production (MeV): twice the
/// electron rest mass.
pub const PAIR_THRESHOLD_MEV: f64 = 2.0 * ELECTRON_REST_MEV;

/// Interaction coefficients of the scintillator at a given photon energy.
#[derive(Debug, Clone, Copy)]
pub struct Attenuation {
    /// Compton linear attenuation coefficient (1/cm).
    pub mu_compton: f64,
    /// Photoelectric linear attenuation coefficient (1/cm).
    pub mu_photo: f64,
    /// Pair-production linear attenuation coefficient (1/cm); zero below
    /// the 1.022 MeV threshold.
    pub mu_pair: f64,
}

impl Attenuation {
    /// Total linear attenuation (1/cm).
    pub fn mu_total(&self) -> f64 {
        self.mu_compton + self.mu_photo + self.mu_pair
    }

    /// Mean free path (cm).
    pub fn mean_free_path(&self) -> f64 {
        1.0 / self.mu_total()
    }

    /// Probability that an interaction is Compton scattering.
    pub fn compton_fraction(&self) -> f64 {
        self.mu_compton / self.mu_total()
    }

    /// Probability that an interaction is pair production.
    pub fn pair_fraction(&self) -> f64 {
        self.mu_pair / self.mu_total()
    }
}

/// Material model precomputing what transport needs.
#[derive(Debug, Clone)]
pub struct Material {
    electron_density: f64,
    /// Photoelectric normalization: `mu_pe(E) = pe_norm * E^-3`.
    pe_norm: f64,
    /// Pair-production normalization:
    /// `mu_pp(E) = pair_norm * ln(E / 1.022 MeV)` above threshold —
    /// the standard logarithmic rise of the Bethe–Heitler cross section.
    pair_norm: f64,
}

impl Material {
    /// Build from electron density (1/cm³) and the energy (MeV) at which
    /// photoelectric and Compton attenuation are equal. Pair production is
    /// pinned so that at 10 MeV it contributes half of the Compton
    /// attenuation (the CsI-like regime).
    pub fn new(electron_density: f64, pe_crossover_energy: f64) -> Self {
        assert!(electron_density > 0.0 && pe_crossover_energy > 0.0);
        let mu_c_at_cross = electron_density * klein_nishina_total(pe_crossover_energy);
        let pe_norm = mu_c_at_cross * pe_crossover_energy.powi(3);
        let mu_c_at_10 = electron_density * klein_nishina_total(10.0);
        let pair_norm = 0.5 * mu_c_at_10 / (10.0 / PAIR_THRESHOLD_MEV).ln();
        Material {
            electron_density,
            pe_norm,
            pair_norm,
        }
    }

    /// Attenuation coefficients at `e_mev`.
    pub fn attenuation(&self, e_mev: f64) -> Attenuation {
        let mu_pair = if e_mev > PAIR_THRESHOLD_MEV {
            self.pair_norm * (e_mev / PAIR_THRESHOLD_MEV).ln()
        } else {
            0.0
        };
        Attenuation {
            mu_compton: self.electron_density * klein_nishina_total(e_mev),
            mu_photo: self.pe_norm / (e_mev * e_mev * e_mev),
            mu_pair,
        }
    }
}

/// The outcome of a sampled Compton scatter.
#[derive(Debug, Clone, Copy)]
pub struct ComptonScatter {
    /// Cosine of the scattering angle.
    pub cos_theta: f64,
    /// Photon energy after the scatter (MeV).
    pub scattered_energy: f64,
    /// Energy transferred to the electron, i.e. deposited locally (MeV).
    pub deposited_energy: f64,
}

/// The Compton relation: scattered photon energy at angle cosine `c`
/// for incident energy `e`.
pub fn scattered_energy(e: f64, cos_theta: f64) -> f64 {
    e / (1.0 + (e / ELECTRON_REST_MEV) * (1.0 - cos_theta))
}

/// The inverse relation used by reconstruction: the scattering-angle cosine
/// implied by incident energy `e` and scattered energy `e_prime`:
/// `cos θ = 1 − mec²(1/e' − 1/e)`.
pub fn compton_cos_theta(e: f64, e_prime: f64) -> f64 {
    1.0 - ELECTRON_REST_MEV * (1.0 / e_prime - 1.0 / e)
}

/// Sample a Compton scattering angle from the Klein–Nishina differential
/// cross section by rejection on `f(cosθ) = r³ + r − r² sin²θ ≤ 2`,
/// where `r = E'/E`.
pub fn sample_compton<R: Rng + ?Sized>(rng: &mut R, e_mev: f64) -> ComptonScatter {
    debug_assert!(e_mev > 0.0);
    loop {
        let cos_theta: f64 = rng.gen_range(-1.0..=1.0);
        let e_prime = scattered_energy(e_mev, cos_theta);
        let r = e_prime / e_mev;
        let sin2 = 1.0 - cos_theta * cos_theta;
        let f = r * r * (r + 1.0 / r - sin2);
        if rng.gen_range(0.0..2.0) <= f {
            return ComptonScatter {
                cos_theta,
                scattered_energy: e_prime,
                deposited_energy: e_mev - e_prime,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn kn_thomson_limit() {
        let s = klein_nishina_total(1e-9);
        assert!((s / SIGMA_THOMSON - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kn_reference_values() {
        // sigma_KN(0.511 MeV) / sigma_T ≈ 0.4326 (k = 1 reference value)
        let ratio = klein_nishina_total(ELECTRON_REST_MEV) / SIGMA_THOMSON;
        assert!((ratio - 0.4326).abs() < 2e-3, "got {ratio}");
        // monotone decreasing in energy
        let mut last = f64::INFINITY;
        for e in [0.03, 0.1, 0.3, 1.0, 3.0, 10.0] {
            let s = klein_nishina_total(e);
            assert!(s < last && s > 0.0);
            last = s;
        }
    }

    #[test]
    fn compton_relation_round_trip() {
        for e in [0.05, 0.3, 1.0, 5.0] {
            for ct in [-1.0, -0.3, 0.0, 0.7, 1.0] {
                let ep = scattered_energy(e, ct);
                assert!(ep > 0.0 && ep <= e + 1e-15);
                let back = compton_cos_theta(e, ep);
                assert!((back - ct).abs() < 1e-10, "e={e}, ct={ct}");
            }
        }
    }

    #[test]
    fn forward_scatter_loses_no_energy() {
        assert!((scattered_energy(1.0, 1.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn backscatter_energy_bound() {
        // backscatter peak: E' -> mec^2/2 as E -> inf
        let ep = scattered_energy(100.0, -1.0);
        assert!(ep < ELECTRON_REST_MEV / 2.0 * 1.01);
    }

    #[test]
    fn material_crossover_pins_equality() {
        let m = Material::new(1.13e24, 0.30);
        let a = m.attenuation(0.30);
        assert!((a.mu_compton - a.mu_photo).abs() / a.mu_compton < 1e-12);
        // photoelectric dominates below, Compton above
        assert!(m.attenuation(0.05).mu_photo > m.attenuation(0.05).mu_compton);
        assert!(m.attenuation(1.0).mu_compton > m.attenuation(1.0).mu_photo);
    }

    #[test]
    fn attenuation_magnitudes_physical() {
        // CsI-like: total attenuation at 1 MeV should be ~0.2-0.4 /cm
        let m = Material::new(1.13e24, 0.30);
        let mu = m.attenuation(1.0).mu_total();
        assert!(mu > 0.1 && mu < 0.6, "mu(1 MeV) = {mu}");
        let mfp = m.attenuation(1.0).mean_free_path();
        assert!((mfp - 1.0 / mu).abs() < 1e-12);
    }

    #[test]
    fn sampled_scatters_match_kinematics() {
        let mut r = rng();
        for _ in 0..2000 {
            let e = 0.662;
            let s = sample_compton(&mut r, e);
            assert!((-1.0..=1.0).contains(&s.cos_theta));
            assert!((s.scattered_energy + s.deposited_energy - e).abs() < 1e-12);
            let expect = scattered_energy(e, s.cos_theta);
            assert!((s.scattered_energy - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn high_energy_scatters_forward_peaked() {
        let mut r = rng();
        let mut fwd = 0;
        let n = 5000;
        for _ in 0..n {
            if sample_compton(&mut r, 5.0).cos_theta > 0.5 {
                fwd += 1;
            }
        }
        // at 5 MeV the KN distribution is strongly forward peaked
        assert!(
            fwd as f64 / n as f64 > 0.6,
            "fwd fraction {}",
            fwd as f64 / n as f64
        );
    }

    #[test]
    fn pair_production_threshold_and_growth() {
        let m = Material::new(1.13e24, 0.30);
        assert_eq!(m.attenuation(0.5).mu_pair, 0.0);
        assert_eq!(m.attenuation(PAIR_THRESHOLD_MEV).mu_pair, 0.0);
        let a2 = m.attenuation(2.0).mu_pair;
        let a5 = m.attenuation(5.0).mu_pair;
        let a10 = m.attenuation(10.0).mu_pair;
        assert!(a2 > 0.0 && a5 > a2 && a10 > a5, "monotone rise");
        // pinned ratio at 10 MeV
        assert!((a10 / m.attenuation(10.0).mu_compton - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = Material::new(1.13e24, 0.30);
        for e in [0.05, 0.3, 1.0, 3.0, 9.0] {
            let a = m.attenuation(e);
            let photo_frac = a.mu_photo / a.mu_total();
            let total = a.compton_fraction() + a.pair_fraction() + photo_frac;
            assert!((total - 1.0).abs() < 1e-12, "e={e}");
        }
    }

    #[test]
    fn low_energy_scatters_nearly_symmetric() {
        let mut r = rng();
        let mut fwd = 0;
        let n = 10_000;
        for _ in 0..n {
            if sample_compton(&mut r, 0.01).cos_theta > 0.0 {
                fwd += 1;
            }
        }
        // Thomson limit is symmetric in cos
        let frac = fwd as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "fwd fraction {frac}");
    }
}
