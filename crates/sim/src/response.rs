//! Detector response: true interactions → measured hits.
//!
//! Models the readout chain of the scintillating-tile / WLS-fiber / SiPM
//! stack (paper Fig. 1):
//!
//! * transverse positions are quantized to the fiber pitch (the crossed
//!   1-D fiber arrays resolve x and y independently);
//! * the vertical coordinate collapses to the tile's center (the tile only
//!   identifies the layer);
//! * deposits within the same fiber cell of the same tile merge into a
//!   single hit (an important, *unreported* error source);
//! * energies are smeared by photostatistics plus an electronics floor;
//! * hits below the 30 keV trigger threshold are dropped;
//! * the robustness study's extra ε% Gaussian perturbation (paper Fig. 10)
//!   is applied here, after the physical response and *without* updating
//!   the reported uncertainties — exactly the unmodeled-noise scenario the
//!   paper probes.

use crate::config::{DetectorConfig, PerturbationConfig};
use crate::event::{Event, MeasuredHit, TrueEvent, TrueHit};
use adapt_math::sampling::normal;
use adapt_math::vec3::Vec3;
use rand::Rng;

/// The measurement model. Immutable and cheaply cloneable.
#[derive(Debug, Clone)]
pub struct DetectorResponse {
    config: DetectorConfig,
    perturbation: PerturbationConfig,
}

impl DetectorResponse {
    /// Response with no extra perturbation.
    pub fn new(config: DetectorConfig) -> Self {
        DetectorResponse {
            config,
            perturbation: PerturbationConfig::default(),
        }
    }

    /// Response with the Fig.-10 style unmodeled perturbation.
    pub fn with_perturbation(config: DetectorConfig, perturbation: PerturbationConfig) -> Self {
        DetectorResponse {
            config,
            perturbation,
        }
    }

    /// The detector configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Apply the readout chain to a true event. Returns `None` when no hit
    /// survives the trigger threshold.
    pub fn measure<R: Rng + ?Sized>(&self, rng: &mut R, truth: &TrueEvent) -> Option<Event> {
        let merged = self.merge_cell_deposits(&truth.hits);
        let mut hits = Vec::with_capacity(merged.len());
        for h in &merged {
            if let Some(m) = self.measure_hit(rng, h) {
                hits.push(m);
            }
        }
        if hits.is_empty() {
            return None;
        }
        Some(Event {
            hits,
            truth: truth.clone(),
            arrival_time: 0.0,
        })
    }

    /// Merge consecutive deposits landing in the same fiber cell of the
    /// same layer. True chronological order is preserved for the survivors.
    fn merge_cell_deposits(&self, hits: &[TrueHit]) -> Vec<TrueHit> {
        let pitch = self.config.fiber_pitch;
        let cell = |h: &TrueHit| {
            (
                h.layer,
                (h.position.x / pitch).round() as i64,
                (h.position.y / pitch).round() as i64,
            )
        };
        let mut out: Vec<TrueHit> = Vec::with_capacity(hits.len());
        for h in hits {
            if let Some(last) = out.last_mut() {
                if cell(last) == cell(h) {
                    // energy-weighted position, summed deposit
                    let w0 = last.energy;
                    let w1 = h.energy;
                    let wsum = w0 + w1;
                    last.position = (last.position * w0 + h.position * w1) / wsum;
                    last.energy = wsum;
                    last.kind = h.kind;
                    continue;
                }
            }
            out.push(*h);
        }
        out
    }

    /// Deterministic dead-channel test: a fiber cell is dead when a hash
    /// of its (layer, ix, iy) lands below the configured fraction. The
    /// same cells stay dead for the detector's whole life, as real
    /// failures would.
    fn cell_is_dead(&self, layer: usize, ix: i64, iy: i64) -> bool {
        let f = self.perturbation.dead_channel_fraction;
        if f <= 0.0 {
            return false;
        }
        let mut z = (layer as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(ix as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(iy as u64);
        z ^= z >> 31;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 29;
        (z as f64 / u64::MAX as f64) < f
    }

    /// Measure one (merged) deposit.
    fn measure_hit<R: Rng + ?Sized>(&self, rng: &mut R, h: &TrueHit) -> Option<MeasuredHit> {
        let c = &self.config;
        let pitch = c.fiber_pitch;
        // transverse: fiber-cell quantization
        let ix = (h.position.x / pitch).round() as i64;
        let iy = (h.position.y / pitch).round() as i64;
        if self.cell_is_dead(h.layer, ix, iy) {
            return None;
        }
        let mx = ix as f64 * pitch;
        let my = iy as f64 * pitch;
        // vertical: the tile only knows its layer
        let mz = c.layer_centers_z[h.layer];
        // energy: photostatistics + floor
        let sigma_e = c.reported_sigma_energy(h.energy);
        let me = normal(rng, h.energy, sigma_e);

        let (mx, my, mz, me) = self.perturb(rng, mx, my, mz, me);
        if me < c.hit_threshold {
            return None;
        }
        Some(MeasuredHit {
            position: Vec3::new(mx, my, mz),
            energy: me,
            sigma_position: Vec3::new(
                c.reported_sigma_xy(),
                c.reported_sigma_xy(),
                c.reported_sigma_z(),
            ),
            sigma_energy: c.reported_sigma_energy(me.max(0.0)),
            layer: h.layer,
        })
    }

    /// The Fig.-10 perturbation: `x' ~ N(x, (x·ε/100)²)` on every spatial
    /// and energy value.
    fn perturb<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        x: f64,
        y: f64,
        z: f64,
        e: f64,
    ) -> (f64, f64, f64, f64) {
        let eps = self.perturbation.epsilon_percent;
        if eps <= 0.0 {
            return (x, y, z, e);
        }
        let p = |rng: &mut R, v: f64| normal(rng, v, (v * eps / 100.0).abs());
        (p(rng, x), p(rng, y), p(rng, z), p(rng, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{InteractionKind, ParticleOrigin};
    use adapt_math::vec3::UnitVec3;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    fn truth_with(hits: Vec<TrueHit>) -> TrueEvent {
        TrueEvent {
            origin: ParticleOrigin::Grb,
            source_dir: UnitVec3::PLUS_Z,
            incident_energy: hits.iter().map(|h| h.energy).sum(),
            hits,
            true_eta: None,
        }
    }

    fn hit_at(x: f64, y: f64, layer: usize, e: f64) -> TrueHit {
        TrueHit {
            position: Vec3::new(x, y, [6.0, 2.0, -2.0, -6.0][layer] + 0.3),
            energy: e,
            layer,
            kind: InteractionKind::Compton,
        }
    }

    #[test]
    fn positions_quantized_to_pitch() {
        let resp = DetectorResponse::new(DetectorConfig::default());
        let mut r = rng();
        let ev = resp
            .measure(&mut r, &truth_with(vec![hit_at(1.07, -3.1, 0, 0.5)]))
            .unwrap();
        let h = &ev.hits[0];
        let pitch = 0.3;
        assert!((h.position.x / pitch - (h.position.x / pitch).round()).abs() < 1e-9);
        assert!((h.position.y / pitch - (h.position.y / pitch).round()).abs() < 1e-9);
        // z collapses to the layer center
        assert!((h.position.z - 6.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_drops_faint_hits() {
        let resp = DetectorResponse::new(DetectorConfig::default());
        let mut r = rng();
        // 5 keV deposit is far below the 30 keV threshold even after smearing
        let out = resp.measure(&mut r, &truth_with(vec![hit_at(0.0, 0.0, 0, 0.005)]));
        assert!(out.is_none());
    }

    #[test]
    fn same_cell_deposits_merge() {
        let resp = DetectorResponse::new(DetectorConfig::default());
        let mut r = rng();
        // two deposits 0.4 mm apart: same 3 mm fiber cell
        let t = truth_with(vec![hit_at(1.00, 1.00, 1, 0.3), hit_at(1.04, 1.00, 1, 0.4)]);
        let ev = resp.measure(&mut r, &t).unwrap();
        assert_eq!(ev.hits.len(), 1);
        // merged energy near 0.7 (smearing is a few percent)
        assert!((ev.hits[0].energy - 0.7).abs() < 0.15);
    }

    #[test]
    fn distinct_cells_stay_separate() {
        let resp = DetectorResponse::new(DetectorConfig::default());
        let mut r = rng();
        let t = truth_with(vec![hit_at(1.0, 1.0, 1, 0.3), hit_at(5.0, 1.0, 1, 0.4)]);
        let ev = resp.measure(&mut r, &t).unwrap();
        assert_eq!(ev.hits.len(), 2);
    }

    #[test]
    fn energy_smearing_is_unbiased() {
        let resp = DetectorResponse::new(DetectorConfig::default());
        let mut r = rng();
        let mut sum = 0.0;
        let n = 5000;
        for _ in 0..n {
            let ev = resp
                .measure(&mut r, &truth_with(vec![hit_at(0.0, 0.0, 0, 0.662)]))
                .unwrap();
            sum += ev.hits[0].energy;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.662).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn reported_sigmas_populated() {
        let resp = DetectorResponse::new(DetectorConfig::default());
        let mut r = rng();
        let ev = resp
            .measure(&mut r, &truth_with(vec![hit_at(0.0, 0.0, 2, 1.0)]))
            .unwrap();
        let h = &ev.hits[0];
        assert!(h.sigma_energy > 0.0);
        assert!(h.sigma_position.x > 0.0 && h.sigma_position.z > h.sigma_position.x);
        assert_eq!(h.layer, 2);
    }

    #[test]
    fn perturbation_widens_error() {
        let cfg = DetectorConfig::default();
        let clean = DetectorResponse::new(cfg.clone());
        let noisy = DetectorResponse::with_perturbation(
            cfg,
            PerturbationConfig {
                epsilon_percent: 10.0,
                dead_channel_fraction: 0.0,
            },
        );
        let spread = |resp: &DetectorResponse, seed: u64| {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            let mut s = adapt_math::stats::RunningStats::new();
            for _ in 0..3000 {
                if let Some(ev) = resp.measure(&mut r, &truth_with(vec![hit_at(10.0, 0.0, 0, 1.0)]))
                {
                    s.push(ev.hits[0].energy);
                }
            }
            s.std_dev()
        };
        let clean_sd = spread(&clean, 5);
        let noisy_sd = spread(&noisy, 5);
        assert!(
            noisy_sd > clean_sd * 1.5,
            "clean {clean_sd}, noisy {noisy_sd}"
        );
    }

    #[test]
    fn dead_channels_drop_hits_deterministically() {
        let cfg = DetectorConfig::default();
        let resp = DetectorResponse::with_perturbation(
            cfg,
            PerturbationConfig {
                epsilon_percent: 0.0,
                dead_channel_fraction: 0.3,
            },
        );
        // survey many cells: roughly the configured fraction is dead, and
        // deadness is reproducible per cell
        let mut dead = 0;
        let n = 2000;
        for i in 0..n {
            let x = (i % 50) as f64 * 0.3 - 7.0;
            let y = (i / 50) as f64 * 0.3 - 6.0;
            let t = truth_with(vec![hit_at(x, y, 0, 0.8)]);
            let mut r1 = ChaCha8Rng::seed_from_u64(1);
            let mut r2 = ChaCha8Rng::seed_from_u64(2);
            let a = resp.measure(&mut r1, &t).is_none();
            let b = resp.measure(&mut r2, &t).is_none();
            assert_eq!(a, b, "deadness must not depend on the rng");
            if a {
                dead += 1;
            }
        }
        let frac = dead as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.06, "dead fraction {frac}");
    }

    #[test]
    fn empty_truth_yields_none() {
        let resp = DetectorResponse::new(DetectorConfig::default());
        let mut r = rng();
        assert!(resp.measure(&mut r, &truth_with(vec![])).is_none());
    }
}
