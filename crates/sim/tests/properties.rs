//! Property-based tests of the simulator's physical invariants.

use adapt_math::vec3::UnitVec3;
use adapt_sim::physics::{
    compton_cos_theta, klein_nishina_total, sample_compton, scattered_energy, Material,
    PAIR_THRESHOLD_MEV,
};
use adapt_sim::{
    apply_pileup, BurstSimulation, DetectorConfig, DetectorGeometry, GrbConfig, LightCurve,
    ParticleOrigin, PileupConfig, TabulatedSpectrum, Transport,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #[test]
    fn scattered_energy_monotone_in_angle(e in 0.05f64..10.0, c1 in -1.0f64..1.0, c2 in -1.0f64..1.0) {
        // larger cos(theta) (more forward) keeps more energy
        let (lo, hi) = if c1 < c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(scattered_energy(e, lo) <= scattered_energy(e, hi) + 1e-15);
    }

    #[test]
    fn compton_inverse_consistent(e in 0.05f64..10.0, c in -1.0f64..1.0) {
        let ep = scattered_energy(e, c);
        prop_assert!((compton_cos_theta(e, ep) - c).abs() < 1e-9);
    }

    #[test]
    fn kn_cross_section_positive_decreasing(e1 in 0.01f64..5.0, factor in 1.1f64..10.0) {
        let s1 = klein_nishina_total(e1);
        let s2 = klein_nishina_total(e1 * factor);
        prop_assert!(s1 > 0.0 && s2 > 0.0);
        prop_assert!(s2 < s1);
    }

    #[test]
    fn attenuation_components_positive(e in 0.03f64..10.0) {
        let m = Material::new(1.13e24, 0.30);
        let a = m.attenuation(e);
        prop_assert!(a.mu_compton > 0.0);
        prop_assert!(a.mu_photo > 0.0);
        prop_assert!(a.mu_pair >= 0.0);
        if e <= PAIR_THRESHOLD_MEV {
            prop_assert_eq!(a.mu_pair, 0.0);
        }
        prop_assert!(a.mean_free_path() > 0.0);
        prop_assert!((0.0..=1.0).contains(&a.compton_fraction()));
    }

    #[test]
    fn sampled_scatter_conserves_energy(e in 0.05f64..10.0, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = sample_compton(&mut rng, e);
        prop_assert!((s.scattered_energy + s.deposited_energy - e).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&s.cos_theta));
    }

    #[test]
    fn spectrum_samples_in_support(
        index in -3.0f64..-0.5,
        e_min in 0.03f64..0.1,
        span in 2.0f64..100.0,
        seed in 0u64..100,
    ) {
        let e_max = e_min * span;
        let spec = TabulatedSpectrum::power_law(index, e_min, e_max);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let e = spec.sample(&mut rng);
            prop_assert!(e >= e_min - 1e-9 && e <= e_max + 1e-9);
        }
        let m = spec.mean_energy();
        prop_assert!(m > e_min && m < e_max);
    }

    #[test]
    fn light_curves_sample_in_window(start in 0.0f64..0.5, tau in 0.01f64..2.0, seed in 0u64..100) {
        let lc = LightCurve::Fred { start, tau };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let t = lc.sample(&mut rng, 1.0);
            prop_assert!(t >= start - 1e-12 && t < 1.0 + 1e-9, "t = {t}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn transport_hits_stay_inside_material(polar in 0.0f64..75.0, e in 0.1f64..8.0, seed in 0u64..300) {
        let cfg = DetectorConfig::default();
        let geometry = DetectorGeometry::new(&cfg);
        let transport = Transport::new(
            geometry,
            Material::new(cfg.electron_density, cfg.pe_crossover_energy),
            cfg.transport_cutoff,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let source = UnitVec3::from_spherical(polar.to_radians(), 1.3);
        let travel = source.flipped();
        for _ in 0..30 {
            let entry = transport.sample_entry_point(&mut rng, travel);
            if let Some(ev) = transport.trace(&mut rng, entry, travel, e, ParticleOrigin::Grb, source) {
                prop_assert!(ev.deposited_energy() <= e + 1e-9);
                for h in &ev.hits {
                    prop_assert!(transport.geometry().layer_containing(h.position).is_some(),
                        "hit outside scintillator at {:?}", h.position);
                    prop_assert!(h.energy > 0.0);
                }
            }
        }
    }

    #[test]
    fn pileup_conserves_hits_and_counts(window_us in 1.0f64..500.0, fluence in 0.2f64..1.0, seed in 0u64..50) {
        let sim = BurstSimulation::with_defaults(GrbConfig::new(fluence, 0.0));
        let data = sim.simulate(seed);
        let n_hits_before: usize = data.events.iter().map(|e| e.hits.len()).sum();
        let n_before = data.events.len();
        let (merged, stats) = apply_pileup(
            data.events,
            &PileupConfig { coincidence_window_s: window_us * 1e-6 },
        );
        let n_hits_after: usize = merged.iter().map(|e| e.hits.len()).sum();
        prop_assert_eq!(n_hits_before, n_hits_after, "merging must not lose hits");
        prop_assert_eq!(stats.events_in, n_before);
        prop_assert_eq!(stats.events_out, merged.len());
        prop_assert!(merged.len() <= n_before);
        // arrival times sorted
        prop_assert!(merged.windows(2).all(|w| w[0].arrival_time <= w[1].arrival_time));
    }

    #[test]
    fn burst_simulation_reproducible(fluence in 0.2f64..1.5, polar in 0.0f64..70.0, seed in 0u64..100) {
        let sim = BurstSimulation::with_defaults(GrbConfig::new(fluence, polar));
        let a = sim.simulate(seed);
        let b = sim.simulate(seed);
        prop_assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            prop_assert!((x.total_energy() - y.total_energy()).abs() < 1e-12);
            prop_assert!((x.arrival_time - y.arrival_time).abs() < 1e-12);
        }
    }
}
