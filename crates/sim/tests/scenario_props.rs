//! Property-based tests of the hostile-sky scenario layer's two core
//! contracts: thinning stays inside its envelope (so the realized
//! process is an unbiased nonhomogeneous Poisson draw even under ramps,
//! steps, and spikes), and `skip_until` replay stays bit-identical with
//! scenario components active (checkpoint restores never fork the sky).

use adapt_sim::{
    FlightProfile, Scenario, ScenarioComponent, StreamConfig, StreamedEvent, StreamingSource,
};
use proptest::prelude::*;

fn base_config(duration_s: f64) -> StreamConfig {
    let mut c = StreamConfig::new(FlightProfile::antarctic_ldb(), duration_s);
    c.background.particle_fluence = 1.0; // keep debug-mode transport cheap
    c.start_h = 20.0; // float: profile multiplier ~1 and smooth
    c
}

fn rate_scenario(
    ramp_peak: f64,
    step_mult: f64,
    spike_mult: f64,
    dip_floor: f64,
    duration_s: f64,
) -> Scenario {
    Scenario::quiet()
        .with(ScenarioComponent::SolarFlareRamp {
            t_start_s: 0.1 * duration_s,
            rise_s: 0.2 * duration_s,
            hold_s: 0.1 * duration_s,
            fall_s: 0.2 * duration_s,
            peak_multiplier: ramp_peak,
        })
        .with(ScenarioComponent::SaaStep {
            t_start_s: 0.3 * duration_s,
            t_end_s: 0.8 * duration_s,
            multiplier: step_mult,
        })
        .with(ScenarioComponent::SaaSpike {
            t_s: 0.5 * duration_s,
            sigma_s: 0.05 * duration_s,
            multiplier: spike_mult,
        })
        .with(ScenarioComponent::OccultationDip {
            t_start_s: 0.6 * duration_s,
            t_end_s: 0.7 * duration_s,
            floor: dip_floor,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The instantaneous intensity λ(t) the thinning loop targets never
    /// exceeds the ceiling rate the candidate process draws against —
    /// acceptance probabilities never clip, for any ramp/step/spike
    /// composition.
    #[test]
    fn scenario_thinning_stays_inside_envelope(
        ramp_peak in 1.0f64..8.0,
        step_mult in 1.0f64..6.0,
        spike_mult in 1.0f64..10.0,
        dip_floor in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let duration_s = 60.0;
        let cfg = base_config(duration_s)
            .with_scenario(rate_scenario(ramp_peak, step_mult, spike_mult, dip_floor, duration_s));
        let src = StreamingSource::new(cfg, seed);
        let ceiling = src.rate_max_hz();
        for i in 0..=4096 {
            let t = duration_s * i as f64 / 4096.0;
            let lambda = src.instantaneous_rate_hz(t);
            prop_assert!(
                lambda <= ceiling * (1.0 + 1e-12),
                "λ({t:.3}) = {lambda} exceeds ceiling {ceiling}"
            );
            prop_assert!(lambda >= 0.0);
        }
    }

    /// A checkpoint restore (`skip_until`) of a scenario-bearing stream
    /// regenerates exactly the tail the uninterrupted stream would have
    /// produced — same times, same event content — including flare-train
    /// photons, dropout losses, and dead-time suppression.
    #[test]
    fn scenario_skip_until_is_bit_identical(
        ramp_peak in 1.0f64..4.0,
        cut_frac in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let duration_s = 6.0;
        let scenario = rate_scenario(ramp_peak, 2.0, 3.0, 0.3, duration_s)
            .with(ScenarioComponent::SgrFlareTrain {
                t_start_s: 1.0,
                period_s: 2.0,
                flares: 2,
                fluence: 0.6,
                polar_deg: 30.0,
            })
            .with(ScenarioComponent::DetectorDropout {
                t_start_s: 2.0,
                t_end_s: 4.0,
                drop_fraction: 0.5,
            })
            .with(ScenarioComponent::DeadTime { tau_s: 1e-4 });
        let cfg = base_config(duration_s).with_scenario(scenario);
        let full: Vec<StreamedEvent> = StreamingSource::new(cfg.clone(), seed).collect();
        let cut = cut_frac * duration_s;
        let mut resumed = StreamingSource::new(cfg, seed);
        resumed.skip_until(cut);
        let tail: Vec<StreamedEvent> = resumed.collect();
        let expected: Vec<&StreamedEvent> = full.iter().filter(|e| e.t_s > cut).collect();
        prop_assert_eq!(tail.len(), expected.len());
        for (x, y) in tail.iter().zip(expected) {
            prop_assert_eq!(x.t_s, y.t_s);
            prop_assert_eq!(x.event.hits.len(), y.event.hits.len());
            prop_assert!((x.event.total_energy() - y.event.total_energy()).abs() < 1e-12);
        }
    }
}
