//! Structured experiment records: every figure/table run can be persisted
//! as JSON alongside its human-readable table, so downstream analysis
//! (plotting, regression tracking across code versions) never has to
//! re-parse console output.

use crate::experiments::{FigureRow, TrialSpec};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// A self-describing experiment record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment identifier ("fig8", "table12", ...).
    pub id: String,
    /// Free-text description.
    pub description: String,
    /// The trial specification used.
    pub spec: TrialSpec,
    /// Master seed of the run.
    pub seed: u64,
    /// The measured rows.
    pub rows: Vec<FigureRow>,
    /// Schema version for forward compatibility.
    pub schema_version: u32,
}

/// Current record schema version.
pub const SCHEMA_VERSION: u32 = 1;

impl ExperimentRecord {
    /// Assemble a record.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        spec: TrialSpec,
        seed: u64,
        rows: Vec<FigureRow>,
    ) -> Self {
        ExperimentRecord {
            id: id.into(),
            description: description.into(),
            spec,
            seed,
            rows,
            schema_version: SCHEMA_VERSION,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("record serialization")
    }

    /// Parse from JSON, rejecting unknown future schema versions.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let rec: ExperimentRecord =
            serde_json::from_str(s).map_err(|e| format!("bad record JSON: {e}"))?;
        if rec.schema_version > SCHEMA_VERSION {
            return Err(format!(
                "record schema v{} is newer than supported v{SCHEMA_VERSION}",
                rec.schema_version
            ));
        }
        Ok(rec)
    }

    /// Write to a file, creating parent directories.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Read from a file.
    pub fn read_from(path: &Path) -> Result<Self, String> {
        let s = std::fs::read_to_string(path).map_err(|e| format!("cannot read record: {e}"))?;
        Self::from_json(&s)
    }

    /// The rows of one mode, for series extraction.
    pub fn series(&self, mode_label: &str) -> Vec<&FigureRow> {
        self.rows
            .iter()
            .filter(|r| r.mode_label == mode_label)
            .collect()
    }

    /// Compare against a previous record of the same experiment: the list
    /// of (x, mode, old c68, new c68) where the 68 % containment moved by
    /// more than `tolerance_deg` — a regression-tracking primitive.
    pub fn regressions_against(
        &self,
        baseline: &ExperimentRecord,
        tolerance_deg: f64,
    ) -> Vec<(f64, String, f64, f64)> {
        let mut out = Vec::new();
        for row in &self.rows {
            if let Some(old) = baseline
                .rows
                .iter()
                .find(|r| r.mode_label == row.mode_label && (r.x - row.x).abs() < 1e-9)
            {
                let delta = row.stats.c68_mean - old.stats.c68_mean;
                if delta > tolerance_deg {
                    out.push((
                        row.x,
                        row.mode_label.clone(),
                        old.stats.c68_mean,
                        row.stats.c68_mean,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ContainmentStats;

    fn row(x: f64, label: &str, c68: f64) -> FigureRow {
        FigureRow {
            x,
            mode_label: label.to_string(),
            stats: ContainmentStats {
                c68_mean: c68,
                c68_err: 0.1,
                c95_mean: c68 * 2.0,
                c95_err: 0.2,
                localized_fraction: 1.0,
                mean_rings_in: 500.0,
                mean_rings_surviving: 200.0,
            },
        }
    }

    fn record(c68_ml: f64) -> ExperimentRecord {
        ExperimentRecord::new(
            "fig8",
            "test record",
            TrialSpec {
                trials_per_meta: 10,
                meta_trials: 2,
            },
            42,
            vec![row(0.0, "With ML", c68_ml), row(0.0, "No ML", 9.0)],
        )
    }

    #[test]
    fn json_round_trip() {
        let rec = record(3.0);
        let back = ExperimentRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back.id, "fig8");
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.seed, 42);
        assert!((back.rows[0].stats.c68_mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn future_schema_rejected() {
        let mut rec = record(3.0);
        rec.schema_version = SCHEMA_VERSION + 1;
        assert!(ExperimentRecord::from_json(&rec.to_json()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let rec = record(3.0);
        let path = std::env::temp_dir().join("adapt_record_test/fig8.json");
        rec.write_to(&path).unwrap();
        let back = ExperimentRecord::read_from(&path).unwrap();
        assert_eq!(back.id, rec.id);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn series_filters_by_mode() {
        let rec = record(3.0);
        assert_eq!(rec.series("With ML").len(), 1);
        assert_eq!(rec.series("No ML").len(), 1);
        assert_eq!(rec.series("nope").len(), 0);
    }

    #[test]
    fn regression_detection() {
        let old = record(3.0);
        let regressed = record(5.0);
        let improved = record(2.0);
        assert_eq!(regressed.regressions_against(&old, 1.0).len(), 1);
        assert!(improved.regressions_against(&old, 1.0).is_empty());
        // small move within tolerance
        assert!(record(3.5).regressions_against(&old, 1.0).is_empty());
    }
}
