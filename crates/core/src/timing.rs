//! The stage-timing harness behind paper Tables I and II.
//!
//! The paper times reconstruction, localization setup, the two network
//! inferences, and approximation + refinement over 300 repetitions of a
//! 1 MeV/cm², normally-incident burst, on a Raspberry Pi 3B+ and an Atom
//! E3845. We time the same stage breakdown on the current host — absolute
//! numbers differ with the hardware, but the *structure* (NN inference a
//! modest share; five full iterations well under a second) is the claim
//! under reproduction.
//!
//! Each stage accumulates into an [`adapt_telemetry::LatencyHistogram`],
//! so the table reports percentiles (p50/p99) alongside the paper's
//! mean/range columns, and min/max are the histogram's exact extremes
//! rather than a separately-tracked pair that can drift out of sync with
//! the distribution.

use crate::pipeline::{Pipeline, PipelineMode};
use adapt_sim::{GrbConfig, PerturbationConfig};
use adapt_telemetry::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// Aggregated timing for one pipeline stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageRow {
    /// Stage name as in the paper's tables.
    pub stage: String,
    /// Mean time (ms).
    pub mean_ms: f64,
    /// Median time (ms).
    pub p50_ms: f64,
    /// 99th-percentile time (ms).
    pub p99_ms: f64,
    /// Smallest observed time (ms).
    pub min_ms: f64,
    /// Largest observed time (ms).
    pub max_ms: f64,
}

/// The full timing table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingTable {
    /// One row per stage, in the paper's order.
    pub rows: Vec<StageRow>,
    /// Repetitions measured.
    pub repetitions: usize,
}

impl TimingTable {
    /// Render with the percentile columns.
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>14} {:>10} {:>10} {:>16}\n",
            "Stage", "Mean Time (ms)", "p50 (ms)", "p99 (ms)", "Range (ms)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<22} {:>14.1} {:>10.1} {:>10.1} {:>8.0}-{:<7.0}\n",
                r.stage, r.mean_ms, r.p50_ms, r.p99_ms, r.min_ms, r.max_ms
            ));
        }
        out
    }

    /// Render in the paper's original two-column format (mean + range),
    /// matching Tables I/II for side-by-side comparison.
    pub fn format_paper(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>14} {:>16}\n",
            "Stage", "Mean Time (ms)", "Range (ms)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<22} {:>14.1} {:>8.0}-{:<7.0}\n",
                r.stage, r.mean_ms, r.min_ms, r.max_ms
            ));
        }
        out
    }
}

/// Measure the stage breakdown over `repetitions` runs of the standard
/// 1 MeV/cm² normally-incident burst (paper protocol: 300 repetitions).
pub fn measure_stages(pipeline: &Pipeline<'_>, repetitions: usize, seed: u64) -> TimingTable {
    let grb = GrbConfig::new(1.0, 0.0);
    let hists: Vec<LatencyHistogram> = (0..6).map(|_| LatencyHistogram::new()).collect();
    for rep in 0..repetitions {
        let out = pipeline.run_trial(
            PipelineMode::Ml,
            &grb,
            PerturbationConfig::default(),
            seed.wrapping_add(rep as u64),
        );
        hists[0].record(out.timings.reconstruction);
        hists[1].record(out.timings.setup);
        hists[2].record(out.timings.d_eta_inference);
        hists[3].record(out.timings.background_inference);
        hists[4].record(out.timings.approx_refine);
        hists[5].record(out.timings.total);
    }
    let row = |stage: &str, h: &LatencyHistogram| {
        let s = h.snapshot();
        StageRow {
            stage: stage.to_string(),
            mean_ms: s.mean_ms,
            p50_ms: s.p50_ms,
            p99_ms: s.p99_ms,
            min_ms: s.min_ms,
            max_ms: s.max_ms,
        }
    };
    TimingTable {
        rows: vec![
            row("Reconstruction", &hists[0]),
            row("Localization Setup", &hists[1]),
            row("DEta NN Inference", &hists[2]),
            row("Bkg NN Inference", &hists[3]),
            row("Approx + Refine", &hists[4]),
            row("Total (Max 5 iter)", &hists[5]),
        ],
        repetitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_models, TrainingCampaignConfig};
    use std::sync::OnceLock;

    fn models() -> &'static crate::training::TrainedModels {
        static MODELS: OnceLock<crate::training::TrainedModels> = OnceLock::new();
        MODELS.get_or_init(|| train_models(&TrainingCampaignConfig::fast(), 29))
    }

    #[test]
    fn timing_table_has_paper_rows() {
        let pipeline = Pipeline::new(models());
        let table = measure_stages(&pipeline, 3, 1);
        let stages: Vec<&str> = table.rows.iter().map(|r| r.stage.as_str()).collect();
        assert_eq!(
            stages,
            vec![
                "Reconstruction",
                "Localization Setup",
                "DEta NN Inference",
                "Bkg NN Inference",
                "Approx + Refine",
                "Total (Max 5 iter)"
            ]
        );
        for r in &table.rows {
            assert!(r.mean_ms >= 0.0);
            assert!(r.min_ms <= r.mean_ms + 1e-9);
            assert!(r.max_ms >= r.mean_ms - 1e-9);
            // percentiles are ordered and bracketed by the exact extremes
            assert!(r.min_ms <= r.p50_ms + 1e-9, "{}: min > p50", r.stage);
            assert!(r.p50_ms <= r.p99_ms + 1e-9, "{}: p50 > p99", r.stage);
            assert!(r.p99_ms <= r.max_ms + 1e-9, "{}: p99 > max", r.stage);
        }
        // total dominates every component
        let total = table.rows.last().unwrap().mean_ms;
        assert!(total >= table.rows[0].mean_ms);
        let text = table.format();
        assert!(text.contains("Bkg NN Inference"));
        assert!(text.contains("p99 (ms)"));
        // the paper rendering keeps the original two-column layout
        let paper = table.format_paper();
        assert!(paper.contains("Range (ms)"));
        assert!(!paper.contains("p99"));
    }
}
