//! The stage-timing harness behind paper Tables I and II.
//!
//! The paper times reconstruction, localization setup, the two network
//! inferences, and approximation + refinement over 300 repetitions of a
//! 1 MeV/cm², normally-incident burst, on a Raspberry Pi 3B+ and an Atom
//! E3845. We time the same stage breakdown on the current host — absolute
//! numbers differ with the hardware, but the *structure* (NN inference a
//! modest share; five full iterations well under a second) is the claim
//! under reproduction.

use crate::pipeline::{Pipeline, PipelineMode};
use adapt_math::stats::RunningStats;
use adapt_sim::{GrbConfig, PerturbationConfig};
use serde::{Deserialize, Serialize};

/// Aggregated timing for one pipeline stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageRow {
    /// Stage name as in the paper's tables.
    pub stage: String,
    /// Mean time (ms).
    pub mean_ms: f64,
    /// Smallest observed time (ms).
    pub min_ms: f64,
    /// Largest observed time (ms).
    pub max_ms: f64,
}

/// The full timing table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingTable {
    /// One row per stage, in the paper's order.
    pub rows: Vec<StageRow>,
    /// Repetitions measured.
    pub repetitions: usize,
}

impl TimingTable {
    /// Render in the paper's two-column format.
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>14} {:>16}\n",
            "Stage", "Mean Time (ms)", "Range (ms)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<22} {:>14.1} {:>8.0}-{:<7.0}\n",
                r.stage, r.mean_ms, r.min_ms, r.max_ms
            ));
        }
        out
    }
}

/// Measure the stage breakdown over `repetitions` runs of the standard
/// 1 MeV/cm² normally-incident burst (paper protocol: 300 repetitions).
pub fn measure_stages(pipeline: &Pipeline<'_>, repetitions: usize, seed: u64) -> TimingTable {
    let grb = GrbConfig::new(1.0, 0.0);
    let mut recon = RunningStats::new();
    let mut setup = RunningStats::new();
    let mut d_eta = RunningStats::new();
    let mut bkg = RunningStats::new();
    let mut approx_refine = RunningStats::new();
    let mut total = RunningStats::new();
    // pre-simulate the burst once per repetition (the detector produces
    // events in flight; simulation time is not a pipeline stage), but
    // reconstruction is timed inside run_trial
    for rep in 0..repetitions {
        let out = pipeline.run_trial(
            PipelineMode::Ml,
            &grb,
            PerturbationConfig::default(),
            seed.wrapping_add(rep as u64),
        );
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        recon.push(ms(out.timings.reconstruction));
        setup.push(ms(out.timings.setup));
        d_eta.push(ms(out.timings.d_eta_inference));
        bkg.push(ms(out.timings.background_inference));
        approx_refine.push(ms(out.timings.approx_refine));
        total.push(ms(out.timings.total));
    }
    let row = |stage: &str, s: &RunningStats| StageRow {
        stage: stage.to_string(),
        mean_ms: s.mean(),
        min_ms: s.min(),
        max_ms: s.max(),
    };
    TimingTable {
        rows: vec![
            row("Reconstruction", &recon),
            row("Localization Setup", &setup),
            row("DEta NN Inference", &d_eta),
            row("Bkg NN Inference", &bkg),
            row("Approx + Refine", &approx_refine),
            row("Total (Max 5 iter)", &total),
        ],
        repetitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_models, TrainingCampaignConfig};
    use std::sync::OnceLock;

    fn models() -> &'static crate::training::TrainedModels {
        static MODELS: OnceLock<crate::training::TrainedModels> = OnceLock::new();
        MODELS.get_or_init(|| train_models(&TrainingCampaignConfig::fast(), 29))
    }

    #[test]
    fn timing_table_has_paper_rows() {
        let pipeline = Pipeline::new(models());
        let table = measure_stages(&pipeline, 3, 1);
        let stages: Vec<&str> = table.rows.iter().map(|r| r.stage.as_str()).collect();
        assert_eq!(
            stages,
            vec![
                "Reconstruction",
                "Localization Setup",
                "DEta NN Inference",
                "Bkg NN Inference",
                "Approx + Refine",
                "Total (Max 5 iter)"
            ]
        );
        for r in &table.rows {
            assert!(r.mean_ms >= 0.0);
            assert!(r.min_ms <= r.mean_ms + 1e-9);
            assert!(r.max_ms >= r.mean_ms - 1e-9);
        }
        // total dominates every component
        let total = table.rows.last().unwrap().mean_ms;
        assert!(total >= table.rows[0].mean_ms);
        let text = table.format();
        assert!(text.contains("Bkg NN Inference"));
    }
}
