//! The end-to-end pipeline: simulate a burst, reconstruct, localize —
//! in any of the paper's evaluation variants.
//!
//! Variants map one-to-one onto the paper's experiment arms:
//!
//! * [`PipelineMode::Baseline`] — the prior (no-ML) pipeline;
//! * [`PipelineMode::Ml`] — the Fig.-6 ML loop (FP32 networks);
//! * [`PipelineMode::MlQuantized`] — INT8 background net + FP32 dEta
//!   (paper Fig. 11);
//! * [`PipelineMode::MlNoPolar`] — the no-polar-input ablation (Fig. 7);
//! * [`PipelineMode::OracleNoBackground`] — truth-stripped background
//!   (Fig. 4, middle bars);
//! * [`PipelineMode::OracleTrueDeta`] — dη replaced by the true η error
//!   (Fig. 4, right bars).

use crate::training::TrainedModels;
use adapt_localize::{
    BackgroundModel, BaselineLocalizer, InferenceBackend, InferenceWorkspace, MlLocalizer,
    MlPipelineConfig, StageTimings,
};
use adapt_math::angles::angular_separation;
use adapt_nn::CompiledMlp;
use adapt_recon::{ComptonRing, ReconCounts, Reconstructor};
use adapt_sim::{
    BackgroundConfig, BurstSimulation, DetectorConfig, GrbConfig, GrbSource, PerturbationConfig,
};
use adapt_telemetry::{Counter, DriftMonitor, DriftReport, Recorder, Stage};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// The evaluation variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Prior pipeline: approximation + robust refinement, analytic dη,
    /// no background rejection beyond likelihood gating.
    Baseline,
    /// Full ML pipeline (paper Fig. 6).
    Ml,
    /// ML pipeline with the INT8 background classifier.
    MlQuantized,
    /// ML pipeline with the 12-input (no polar angle) background net and a
    /// flat 0.5 threshold.
    MlNoPolar,
    /// Oracle: all true background rings removed before the baseline runs.
    OracleNoBackground,
    /// Oracle: every ring's dη replaced by its true η error.
    OracleTrueDeta,
}

impl PipelineMode {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PipelineMode::Baseline => "No ML (prior pipeline)",
            PipelineMode::Ml => "With ML",
            PipelineMode::MlQuantized => "With ML (INT8 bkg)",
            PipelineMode::MlNoPolar => "With ML (no polar input)",
            PipelineMode::OracleNoBackground => "Oracle: background removed",
            PipelineMode::OracleTrueDeta => "Oracle: true d-eta",
        }
    }
}

/// One trial's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Localization error in degrees (180° when localization failed).
    pub error_deg: f64,
    /// Whether localization produced a direction at all.
    pub localized: bool,
    /// Rings entering localization.
    pub rings_in: usize,
    /// Rings surviving background rejection (ML modes; otherwise equals
    /// `rings_in`).
    pub rings_surviving: usize,
    /// Events rejected during reconstruction for non-physical geometry or
    /// energy (only populated by [`Pipeline::run_trial`]; zero when
    /// localizing pre-reconstructed rings).
    pub degenerate_rings: usize,
    /// Per-stage timings.
    pub timings: TrialTimings,
}

/// Wall-clock stage timings of one trial (paper Tables I/II rows).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrialTimings {
    /// Event reconstruction (events → rings).
    pub reconstruction: Duration,
    /// Localization setup (ring buffers, feature staging).
    pub setup: Duration,
    /// dEta network inference.
    pub d_eta_inference: Duration,
    /// Background network inference (all iterations).
    pub background_inference: Duration,
    /// Approximation + all refinement passes.
    pub approx_refine: Duration,
    /// Everything, end to end (excluding the physics simulation, which on
    /// the instrument is the detector itself).
    pub total: Duration,
}

thread_local! {
    /// Per-thread inference workspace: trial drivers fan trials out over
    /// worker threads, and each thread's network buffers warm up once and
    /// are reused by every subsequent trial it runs.
    static WORKSPACE: RefCell<InferenceWorkspace> = RefCell::new(InferenceWorkspace::new());
}

/// The configured end-to-end pipeline.
pub struct Pipeline<'a> {
    models: &'a TrainedModels,
    /// The FP32 background nets compiled once into BN-folded flat-buffer
    /// plans; every trial's `MlLocalizer` borrows these instead of
    /// re-deriving the inference path from the layer list.
    compiled_background: CompiledMlp,
    compiled_background_no_polar: CompiledMlp,
    reconstructor: Reconstructor,
    ml_config: MlPipelineConfig,
    backend: InferenceBackend,
    detector: DetectorConfig,
    background: BackgroundConfig,
    recorder: &'a dyn Recorder,
    drift: Option<&'a DriftMonitor>,
}

impl<'a> Pipeline<'a> {
    /// Assemble with default detector/background configuration.
    pub fn new(models: &'a TrainedModels) -> Self {
        Pipeline {
            models,
            compiled_background: CompiledMlp::compile(&models.background),
            compiled_background_no_polar: CompiledMlp::compile(&models.background_no_polar),
            reconstructor: Reconstructor::default(),
            ml_config: MlPipelineConfig::default(),
            backend: InferenceBackend::default(),
            detector: DetectorConfig::default(),
            background: BackgroundConfig::default(),
            recorder: adapt_telemetry::noop(),
            drift: None,
        }
    }

    /// Override the ML loop configuration.
    pub fn with_ml_config(mut self, config: MlPipelineConfig) -> Self {
        self.ml_config = config;
        self
    }

    /// Attach a telemetry recorder (e.g. an
    /// [`adapt_telemetry::FlightRecorder`]): stage durations, pipeline
    /// counters, and the ML loop's per-iteration records are reported to
    /// it. The default is the no-op recorder, which keeps the hot path
    /// free of telemetry cost.
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach an in-flight drift monitor (usually built over the training
    /// campaign's [`DriftReference`](adapt_telemetry::DriftReference),
    /// persisted in [`TrainedModels::drift_reference`]). Each ML-mode
    /// trial feeds its staged feature rows into the monitor's histograms;
    /// call [`record_drift`](Self::record_drift) after a run to compute
    /// PSI divergence and surface it through the recorder's counters.
    pub fn with_drift_monitor(mut self, monitor: &'a DriftMonitor) -> Self {
        self.drift = Some(monitor);
        self
    }

    /// Compute the drift monitor's PSI report over everything observed so
    /// far and push it into the attached recorder's counters
    /// (`drift_rows`, `drift_mean_psi_milli`, `drift_features_flagged`).
    /// Call once per run — counters are cumulative, so calling after each
    /// trial would double-count. Returns `None` when no monitor is
    /// attached.
    pub fn record_drift(&self) -> Option<DriftReport> {
        let monitor = self.drift?;
        let report = monitor.report();
        self.recorder.add(Counter::DriftRows, report.rows_observed);
        self.recorder.add(
            Counter::DriftMeanPsiMilli,
            (report.mean_psi * 1000.0).round().max(0.0) as u64,
        );
        self.recorder.add(
            Counter::DriftFeaturesFlagged,
            report.features_flagged as u64,
        );
        Some(report)
    }

    /// Select the background-network arithmetic for [`PipelineMode::Ml`]:
    /// the compiled FP32 plan (default) or the compiled fixed-point INT8
    /// plan. The no-polar ablation always runs FP32 (no quantized
    /// 12-input net is trained), and [`PipelineMode::MlQuantized`] is
    /// INT8 by definition.
    pub fn with_backend(mut self, backend: InferenceBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The expected number of GRB photons geometrically intercepted for a
    /// burst config — used in reports.
    pub fn expected_grb_photons(&self, grb: &GrbConfig) -> f64 {
        let geometry = adapt_sim::DetectorGeometry::new(&self.detector);
        GrbSource::new(grb).expected_photons_on_detector(&geometry)
    }

    /// Simulate one burst and return its reconstructed rings (shared by
    /// all modes of a paired comparison).
    pub fn simulate_rings(
        &self,
        grb: &GrbConfig,
        perturbation: PerturbationConfig,
        seed: u64,
    ) -> (Vec<ComptonRing>, Duration) {
        let (rings, recon_time, _) = self.simulate_rings_counted(grb, perturbation, seed);
        (rings, recon_time)
    }

    /// As [`simulate_rings`](Self::simulate_rings), additionally returning
    /// the reconstruction acceptance bookkeeping (attempted / degenerate /
    /// other-rejected counts). Degenerate events are also reported to the
    /// attached recorder.
    pub fn simulate_rings_counted(
        &self,
        grb: &GrbConfig,
        perturbation: PerturbationConfig,
        seed: u64,
    ) -> (Vec<ComptonRing>, Duration, ReconCounts) {
        let sim = BurstSimulation::new(
            self.detector.clone(),
            grb.clone(),
            self.background.clone(),
            perturbation,
        );
        let data = sim.simulate(seed);
        let t = Instant::now();
        let (rings, counts) = self
            .reconstructor
            .reconstruct_all_counted(&data.events, self.recorder);
        (rings, t.elapsed(), counts)
    }

    /// As [`simulate_rings`](Self::simulate_rings) but with the pileup
    /// model applied before reconstruction (the paper's future-work
    /// scenario: events arriving within the detection latency merge).
    /// Returns the rings, the reconstruction time, and the pileup stats.
    pub fn simulate_rings_with_pileup(
        &self,
        grb: &GrbConfig,
        perturbation: PerturbationConfig,
        pileup: &adapt_sim::PileupConfig,
        seed: u64,
    ) -> (Vec<ComptonRing>, Duration, adapt_sim::PileupStats) {
        let sim = BurstSimulation::new(
            self.detector.clone(),
            grb.clone(),
            self.background.clone(),
            perturbation,
        );
        let data = sim.simulate(seed);
        let (events, stats) = adapt_sim::apply_pileup(data.events, pileup);
        let t = Instant::now();
        let rings = self.reconstructor.reconstruct_all(&events);
        (rings, t.elapsed(), stats)
    }

    /// Localize pre-reconstructed rings under a mode. `seed` drives the
    /// localization's internal sampling only.
    pub fn localize_rings(
        &self,
        rings: &[ComptonRing],
        mode: PipelineMode,
        grb: &GrbConfig,
        seed: u64,
        reconstruction_time: Duration,
    ) -> TrialOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x10C4_117E);
        let source = GrbSource::new(grb).direction;
        let t_total = Instant::now();

        // setup: stage the ring buffers the localizer consumes
        let t_setup = Instant::now();
        let mut staged: Vec<ComptonRing> = match mode {
            PipelineMode::OracleNoBackground => rings
                .iter()
                .filter(|r| !r.is_background_truth())
                .cloned()
                .collect(),
            PipelineMode::OracleTrueDeta => rings
                .iter()
                .map(|r| {
                    let d = r
                        .truth
                        .map(|t| t.true_eta_error(r.axis, r.eta).max(1e-4))
                        .unwrap_or(r.d_eta);
                    r.with_d_eta(d)
                })
                .collect(),
            _ => rings.to_vec(),
        };
        staged.shrink_to_fit();
        let setup = t_setup.elapsed();

        let rings_in = staged.len();
        let (direction, surviving, ml_timings) = match mode {
            PipelineMode::Baseline
            | PipelineMode::OracleNoBackground
            | PipelineMode::OracleTrueDeta => {
                let t = Instant::now();
                let res = BaselineLocalizer::new(self.ml_config.localizer.clone())
                    .localize(&staged, &mut rng);
                let timings = StageTimings {
                    approx_refine: t.elapsed(),
                    ..Default::default()
                };
                (res.map(|r| r.direction), rings_in, timings)
            }
            PipelineMode::Ml => {
                let bkg: &dyn BackgroundModel = match self.backend {
                    InferenceBackend::Float => &self.compiled_background,
                    InferenceBackend::Int8 => self.models.quantized_background.plan(),
                };
                let mut ml = MlLocalizer::new(
                    bkg,
                    &self.models.thresholds,
                    &self.models.d_eta,
                    self.ml_config.clone(),
                )
                .with_recorder(self.recorder);
                if let Some(monitor) = self.drift {
                    ml = ml.with_drift_monitor(monitor);
                }
                match Self::localize_reusing_workspace(&ml, &staged, &mut rng) {
                    Some(r) => (Some(r.direction), r.surviving_rings, r.timings),
                    None => (None, rings_in, StageTimings::default()),
                }
            }
            PipelineMode::MlQuantized => {
                let mut ml = MlLocalizer::new(
                    &self.models.quantized_background,
                    &self.models.thresholds,
                    &self.models.d_eta,
                    self.ml_config.clone(),
                )
                .with_recorder(self.recorder);
                if let Some(monitor) = self.drift {
                    ml = ml.with_drift_monitor(monitor);
                }
                match Self::localize_reusing_workspace(&ml, &staged, &mut rng) {
                    Some(r) => (Some(r.direction), r.surviving_rings, r.timings),
                    None => (None, rings_in, StageTimings::default()),
                }
            }
            PipelineMode::MlNoPolar => {
                let thresholds = adapt_nn::ThresholdTable::uniform(0.5);
                let mut cfg = self.ml_config.clone();
                cfg.use_polar_input = false;
                let mut ml = MlLocalizer::new(
                    &self.compiled_background_no_polar,
                    &thresholds,
                    &self.models.d_eta_no_polar,
                    cfg,
                )
                .with_recorder(self.recorder);
                if let Some(monitor) = self.drift {
                    ml = ml.with_drift_monitor(monitor);
                }
                match Self::localize_reusing_workspace(&ml, &staged, &mut rng) {
                    Some(r) => (Some(r.direction), r.surviving_rings, r.timings),
                    None => (None, rings_in, StageTimings::default()),
                }
            }
        };

        let total = t_total.elapsed() + reconstruction_time;
        let (error_deg, localized) = match direction {
            Some(d) => (angular_separation(d, source), true),
            None => (180.0, false),
        };

        // flight-recorder stage rows; the NN stages only exist in the ML
        // modes, so recording them elsewhere would pollute the histograms
        // with structural zeros
        self.recorder
            .duration(Stage::Reconstruction, reconstruction_time);
        self.recorder.duration(Stage::Setup, setup);
        self.recorder
            .duration(Stage::ApproxRefine, ml_timings.approx_refine);
        self.recorder.duration(Stage::Total, total);
        if matches!(
            mode,
            PipelineMode::Ml | PipelineMode::MlQuantized | PipelineMode::MlNoPolar
        ) {
            self.recorder
                .duration(Stage::DEtaInference, ml_timings.d_eta_inference);
            self.recorder
                .duration(Stage::BackgroundInference, ml_timings.background_inference);
        }
        self.recorder.add(Counter::TrialsRun, 1);
        self.recorder.add(Counter::RingsIn, rings_in as u64);
        self.recorder
            .add(Counter::RingsRejected, (rings_in - surviving) as u64);

        TrialOutcome {
            error_deg,
            localized,
            rings_in,
            rings_surviving: surviving,
            degenerate_rings: 0,
            timings: TrialTimings {
                reconstruction: reconstruction_time,
                setup,
                d_eta_inference: ml_timings.d_eta_inference,
                background_inference: ml_timings.background_inference,
                approx_refine: ml_timings.approx_refine,
                total,
            },
        }
    }

    /// Localize through this thread's persistent workspace, so repeated
    /// trials share warm network buffers.
    fn localize_reusing_workspace(
        ml: &MlLocalizer<'_>,
        rings: &[ComptonRing],
        rng: &mut ChaCha8Rng,
    ) -> Option<adapt_localize::MlLocalizeResult> {
        WORKSPACE.with(|ws| ml.localize_with(rings, rng, &mut ws.borrow_mut()))
    }

    /// Run one full trial (simulate → reconstruct → localize).
    pub fn run_trial(
        &self,
        mode: PipelineMode,
        grb: &GrbConfig,
        perturbation: PerturbationConfig,
        seed: u64,
    ) -> TrialOutcome {
        let (rings, recon_time, counts) = self.simulate_rings_counted(grb, perturbation, seed);
        let mut out = self.localize_rings(&rings, mode, grb, seed, recon_time);
        out.degenerate_rings = counts.degenerate_rings;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_models, TrainingCampaignConfig};
    use adapt_telemetry::PSI_FLAG;
    use std::sync::OnceLock;

    fn models() -> &'static TrainedModels {
        static MODELS: OnceLock<TrainedModels> = OnceLock::new();
        MODELS.get_or_init(|| train_models(&TrainingCampaignConfig::fast(), 17))
    }

    #[test]
    fn all_modes_produce_outcomes() {
        let m = models();
        let pipeline = Pipeline::new(m);
        let grb = GrbConfig::new(2.0, 0.0);
        for mode in [
            PipelineMode::Baseline,
            PipelineMode::Ml,
            PipelineMode::MlQuantized,
            PipelineMode::MlNoPolar,
            PipelineMode::OracleNoBackground,
            PipelineMode::OracleTrueDeta,
        ] {
            let out = pipeline.run_trial(mode, &grb, PerturbationConfig::default(), 5);
            assert!(out.rings_in > 10, "{mode:?}: {} rings", out.rings_in);
            assert!(out.error_deg >= 0.0 && out.error_deg <= 180.0);
            assert!(out.timings.total >= out.timings.reconstruction);
            if matches!(mode, PipelineMode::Ml | PipelineMode::MlQuantized) {
                assert!(out.rings_surviving <= out.rings_in);
            }
        }
    }

    #[test]
    fn bright_burst_localizes_well_in_all_informative_modes() {
        let m = models();
        let pipeline = Pipeline::new(m);
        let grb = GrbConfig::new(4.0, 0.0);
        for mode in [PipelineMode::OracleNoBackground, PipelineMode::Ml] {
            let out = pipeline.run_trial(mode, &grb, PerturbationConfig::default(), 11);
            assert!(
                out.localized && out.error_deg < 20.0,
                "{mode:?}: error {} deg",
                out.error_deg
            );
        }
    }

    #[test]
    fn int8_backend_matches_quantized_mode() {
        // PipelineMode::Ml with the INT8 backend and PipelineMode::MlQuantized
        // both execute the same compiled fixed-point plan — outcomes agree
        let m = models();
        let grb = GrbConfig::new(2.0, 0.0);
        let float_pipe = Pipeline::new(m);
        let int8_pipe = Pipeline::new(m).with_backend(InferenceBackend::Int8);
        let (rings, rt) = float_pipe.simulate_rings(&grb, PerturbationConfig::default(), 5);
        let via_backend = int8_pipe.localize_rings(&rings, PipelineMode::Ml, &grb, 5, rt);
        let via_mode = float_pipe.localize_rings(&rings, PipelineMode::MlQuantized, &grb, 5, rt);
        assert_eq!(via_backend.error_deg, via_mode.error_deg);
        assert_eq!(via_backend.rings_surviving, via_mode.rings_surviving);
    }

    #[test]
    fn shared_rings_make_paired_comparisons() {
        let m = models();
        let pipeline = Pipeline::new(m);
        let grb = GrbConfig::new(1.5, 20.0);
        let (rings, rt) = pipeline.simulate_rings(&grb, PerturbationConfig::default(), 3);
        let a = pipeline.localize_rings(&rings, PipelineMode::Baseline, &grb, 3, rt);
        let b = pipeline.localize_rings(&rings, PipelineMode::Ml, &grb, 3, rt);
        assert_eq!(a.rings_in, b.rings_in);
    }

    #[test]
    fn drift_monitor_sees_ml_trial_features_and_flags_the_polar_shift() {
        let m = models();
        let monitor = DriftMonitor::new(m.drift_reference.clone());
        let pipeline = Pipeline::new(m).with_drift_monitor(&monitor);
        let grb = GrbConfig::new(2.0, 0.0);
        let out = pipeline.run_trial(PipelineMode::Ml, &grb, PerturbationConfig::default(), 5);
        // the first background-rejection pass stages every incoming ring,
        // and only that pass feeds the monitor
        assert_eq!(monitor.rows_observed(), out.rings_in as u64);
        let report = pipeline.record_drift().expect("monitor attached");
        assert_eq!(report.per_feature_psi.len(), 13);
        assert!(report.per_feature_psi.iter().all(|p| p.is_finite()));
        // the training reference spans polar angles {0, 30, 60} deg but a
        // single burst sits at one angle, so the polar-angle feature (the
        // last model input) is a genuine concentrated shift the monitor
        // must flag
        let polar_psi = *report.per_feature_psi.last().unwrap();
        assert!(
            polar_psi > PSI_FLAG,
            "single-angle burst not flagged on the polar feature: PSI {polar_psi}"
        );
        assert!(report.features_flagged >= 1);
        assert!(report.max_psi >= report.mean_psi && report.mean_psi >= 0.0);
    }

    #[test]
    fn drift_counters_reach_the_recorder() {
        let m = models();
        let monitor = DriftMonitor::new(m.drift_reference.clone());
        let recorder = adapt_telemetry::FlightRecorder::new();
        let pipeline = Pipeline::new(m)
            .with_recorder(&recorder)
            .with_drift_monitor(&monitor);
        let grb = GrbConfig::new(2.0, 0.0);
        pipeline.run_trial(PipelineMode::Ml, &grb, PerturbationConfig::default(), 9);
        let report = pipeline.record_drift().expect("monitor attached");
        // the counters mirror the report exactly: rows, milli-PSI, flags
        assert_eq!(recorder.counter(Counter::DriftRows), report.rows_observed);
        assert!(report.rows_observed > 0);
        assert_eq!(
            recorder.counter(Counter::DriftMeanPsiMilli),
            (report.mean_psi * 1000.0).round().max(0.0) as u64
        );
        assert_eq!(
            recorder.counter(Counter::DriftFeaturesFlagged),
            report.features_flagged as u64
        );
    }

    #[test]
    fn baseline_mode_feeds_no_drift_rows() {
        let m = models();
        let monitor = DriftMonitor::new(m.drift_reference.clone());
        let pipeline = Pipeline::new(m).with_drift_monitor(&monitor);
        let grb = GrbConfig::new(2.0, 0.0);
        pipeline.run_trial(
            PipelineMode::Baseline,
            &grb,
            PerturbationConfig::default(),
            5,
        );
        assert_eq!(monitor.rows_observed(), 0);
    }

    #[test]
    fn oracle_no_background_strips_truth_background() {
        let m = models();
        let pipeline = Pipeline::new(m);
        let grb = GrbConfig::new(1.0, 0.0);
        let (rings, rt) = pipeline.simulate_rings(&grb, PerturbationConfig::default(), 7);
        let n_bkg = rings.iter().filter(|r| r.is_background_truth()).count();
        assert!(n_bkg > 0);
        let out = pipeline.localize_rings(&rings, PipelineMode::OracleNoBackground, &grb, 7, rt);
        assert_eq!(out.rings_in, rings.len() - n_bkg);
    }
}
