//! Training-data campaign and model training (paper §III, "Model
//! Training").
//!
//! The paper simulates 270 M GRB photons across nine polar angles (0°–80°
//! in 10° steps) plus scaled background exposure, keeps the ~1 M rings that
//! pass pre-localization filters, and trains on an 80/20/20 split. This
//! module reproduces that procedure at a configurable (laptop-scale)
//! photon budget: simulate per-angle bursts, reconstruct rings, label them
//! from truth, train the two networks with the paper's hyperparameters,
//! fit the per-polar-bin thresholds, and quantize the background network.
//!
//! Trained models are cached on disk as JSON so the experiment binaries
//! don't retrain for every figure.

use adapt_nn::mlp::BlockOrder;
use adapt_nn::{
    models, qat_finetune, three_way_split, Dataset, Matrix, Mlp, QuantizedMlp, ThresholdTable,
    TrainConfig,
};
use adapt_recon::{ComptonRing, Reconstructor};
use adapt_sim::{BackgroundConfig, BurstSimulation, DetectorConfig, GrbConfig, PerturbationConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Configuration of the training campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingCampaignConfig {
    /// GRB fluence simulated at each polar angle (MeV/cm²). Larger values
    /// mean more GRB rings per angle.
    pub grb_fluence_per_angle: f64,
    /// Background particle fluence for the training exposure (boosted far
    /// above the flight-time default so the label classes stay balanced,
    /// as the paper does by simulating 1350× background batches).
    pub background_fluence: f64,
    /// The nine source polar angles (degrees).
    pub polar_angles_deg: Vec<f64>,
    /// Maximum training epochs (paper: 120; scale down for quick runs).
    pub max_epochs: usize,
    /// Floor for the dEta regression target |η error| before the log.
    pub eta_error_floor: f64,
}

impl Default for TrainingCampaignConfig {
    fn default() -> Self {
        TrainingCampaignConfig {
            grb_fluence_per_angle: 25.0,
            background_fluence: 250.0,
            polar_angles_deg: (0..9).map(|i| i as f64 * 10.0).collect(),
            max_epochs: 60,
            eta_error_floor: 1e-4,
        }
    }
}

impl TrainingCampaignConfig {
    /// A fast configuration for tests: fewer photons, fewer epochs.
    pub fn fast() -> Self {
        TrainingCampaignConfig {
            grb_fluence_per_angle: 2.0,
            background_fluence: 20.0,
            polar_angles_deg: vec![0.0, 30.0, 60.0],
            max_epochs: 8,
            eta_error_floor: 1e-4,
        }
    }
}

/// A labeled ring with its generation-time polar angle (the angle fed as
/// the networks' thirteenth input during training).
#[derive(Debug, Clone)]
pub struct LabeledRing {
    /// The reconstructed ring with truth attached.
    pub ring: ComptonRing,
    /// The true source polar angle of the *GRB* of that exposure —
    /// background rings get the same exposure angle, mirroring flight
    /// conditions where the loop feeds the current ŝ estimate to every
    /// ring of the burst.
    pub exposure_polar_deg: f64,
}

/// Simulate the training campaign and reconstruct all rings.
pub fn generate_training_rings(config: &TrainingCampaignConfig, seed: u64) -> Vec<LabeledRing> {
    let recon = Reconstructor::default();
    config
        .polar_angles_deg
        .par_iter()
        .enumerate()
        .flat_map(|(i, &angle)| {
            let grb = GrbConfig::new(config.grb_fluence_per_angle, angle);
            let background = BackgroundConfig {
                particle_fluence: config.background_fluence,
                ..BackgroundConfig::default()
            };
            let sim = BurstSimulation::new(
                DetectorConfig::default(),
                grb,
                background,
                PerturbationConfig::default(),
            );
            let data = sim.simulate(seed.wrapping_add(i as u64 * 7919));
            let rings = recon.reconstruct_all(&data.events);
            rings
                .into_iter()
                .map(|ring| LabeledRing {
                    ring,
                    exposure_polar_deg: angle,
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Build the background-classification dataset (label 1 = background).
/// When `with_polar` is false the 12-feature variant is produced (Fig. 7
/// ablation).
pub fn background_dataset(rings: &[LabeledRing], with_polar: bool) -> Dataset {
    let dim = if with_polar { 13 } else { 12 };
    let mut xs = Vec::with_capacity(rings.len() * dim);
    let mut ys = Vec::with_capacity(rings.len());
    for lr in rings {
        if with_polar {
            xs.extend_from_slice(&lr.ring.features.to_model_input(lr.exposure_polar_deg));
        } else {
            xs.extend_from_slice(&lr.ring.features.to_static_array());
        }
        ys.push(if lr.ring.is_background_truth() {
            1.0
        } else {
            0.0
        });
    }
    Dataset::new(Matrix::from_vec(rings.len(), dim, xs), ys)
}

/// Build the dEta regression dataset: GRB rings only (the paper removes
/// background rings from the dEta training set); target is
/// `ln(max(|η error|, floor))`. `with_polar` selects the 13- or 12-wide
/// input variant.
pub fn d_eta_dataset(rings: &[LabeledRing], floor: f64, with_polar: bool) -> Dataset {
    let dim = if with_polar { 13 } else { 12 };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut n = 0usize;
    for lr in rings {
        if lr.ring.is_background_truth() {
            continue;
        }
        let Some(truth) = lr.ring.truth else { continue };
        let err = truth.true_eta_error(lr.ring.axis, lr.ring.eta).max(floor);
        if with_polar {
            xs.extend_from_slice(&lr.ring.features.to_model_input(lr.exposure_polar_deg));
        } else {
            xs.extend_from_slice(&lr.ring.features.to_static_array());
        }
        ys.push(err.ln());
        n += 1;
    }
    Dataset::new(Matrix::from_vec(n, dim, xs), ys)
}

/// Everything the ML pipeline needs at inference time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModels {
    /// Background classifier with the polar input (13-wide).
    pub background: Mlp,
    /// Background classifier without the polar input (12-wide ablation).
    pub background_no_polar: Mlp,
    /// Per-polar-bin thresholds for the 13-wide classifier.
    pub thresholds: ThresholdTable,
    /// dEta regressor (outputs ln dη).
    pub d_eta: Mlp,
    /// dEta regressor without the polar input (Fig. 7 ablation arm).
    pub d_eta_no_polar: Mlp,
    /// The float (FP32-role) parent of the quantized classifier: the
    /// LinearFirst model after QAT fine-tuning. Fig.-11-style comparisons
    /// of "INT8 vs FP32" are between `quantized_background` and this.
    pub background_linear_first: Mlp,
    /// INT8-quantized background classifier (QAT fine-tuned, fused).
    pub quantized_background: QuantizedMlp,
    /// Validation losses for the record: (background, dEta).
    pub val_losses: (f64, f64),
}

/// Train all models from a ring campaign. Deterministic given `seed`.
pub fn train_models(config: &TrainingCampaignConfig, seed: u64) -> TrainedModels {
    let rings = generate_training_rings(config, seed);
    assert!(
        rings.len() > 200,
        "training campaign produced only {} rings — raise the fluence",
        rings.len()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA11CE);

    // ----- background network (with polar) -----
    let bkg_data = background_dataset(&rings, true);
    let (btrain, bval, btest) = three_way_split(&bkg_data, &mut rng);
    let mut background = models::background_network(13, BlockOrder::BatchNormFirst, &mut rng);
    let bcfg = TrainConfig {
        max_epochs: config.max_epochs,
        ..TrainConfig::background_paper()
    };
    // scaled batch: the paper's 4096 exceeds small campaign sizes
    let bcfg = TrainConfig {
        batch_size: bcfg.batch_size.min((btrain.len() / 4).max(32)),
        learning_rate: 3e-3,
        ..bcfg
    };
    let breport = adapt_nn::train(&mut background, &btrain, &bval, &bcfg, &mut rng);

    // ----- thresholds on the training split -----
    let logits = background.predict(&btrain.x);
    let probs: Vec<f64> = (0..btrain.len())
        .map(|i| adapt_nn::sigmoid(logits.get(i, 0)))
        .collect();
    let polar: Vec<f64> = (0..btrain.len()).map(|i| btrain.x.get(i, 12)).collect();
    let thresholds = ThresholdTable::fit(&probs, &btrain.y, &polar);

    // ----- background network without polar (Fig. 7 ablation) -----
    let bkg_np_data = background_dataset(&rings, false);
    let (nptrain, npval, _) = three_way_split(&bkg_np_data, &mut rng);
    let mut background_no_polar =
        models::background_network(12, BlockOrder::BatchNormFirst, &mut rng);
    adapt_nn::train(&mut background_no_polar, &nptrain, &npval, &bcfg, &mut rng);

    // ----- dEta network -----
    let deta_data = d_eta_dataset(&rings, config.eta_error_floor, true);
    let (dtrain, dval, _) = three_way_split(&deta_data, &mut rng);
    let mut d_eta = models::d_eta_network(13, BlockOrder::BatchNormFirst, &mut rng);
    let dcfg = TrainConfig {
        max_epochs: config.max_epochs,
        ..TrainConfig::d_eta_paper()
    };
    let dreport = adapt_nn::train(&mut d_eta, &dtrain, &dval, &dcfg, &mut rng);

    // ----- dEta network without polar (Fig. 7 ablation arm) -----
    let deta_np_data = d_eta_dataset(&rings, config.eta_error_floor, false);
    let (dnp_train, dnp_val, _) = three_way_split(&deta_np_data, &mut rng);
    let mut d_eta_no_polar = models::d_eta_network(12, BlockOrder::BatchNormFirst, &mut rng);
    adapt_nn::train(&mut d_eta_no_polar, &dnp_train, &dnp_val, &dcfg, &mut rng);

    // ----- quantized background network -----
    // retrain in the fusion-friendly LinearFirst order (paper §V retrains
    // with the swapped block order), then QAT fine-tune and quantize
    let mut bkg_lf = models::background_network(13, BlockOrder::LinearFirst, &mut rng);
    // prepend a normalizing input BatchNorm (folded forward into the first
    // Linear at fusion time), keeping the raw 13-feature interface while
    // restoring the trainability the BatchNormFirst order enjoys
    bkg_lf.layers_mut().insert(
        0,
        adapt_nn::Layer::BatchNorm(adapt_nn::BatchNorm1d::new(13)),
    );
    adapt_nn::train(&mut bkg_lf, &btrain, &bval, &bcfg, &mut rng);
    let qat_cfg = TrainConfig {
        learning_rate: bcfg.learning_rate * 0.1,
        ..bcfg.clone()
    };
    qat_finetune(&mut bkg_lf, &btrain, &qat_cfg, 3, &mut rng);
    let quantized_background = QuantizedMlp::quantize(&bkg_lf, &btrain.x);
    let background_linear_first = bkg_lf;

    // sanity: held-out accuracy recorded for the experiment log
    let test_logits = background.predict(&btest.x);
    let _test_acc = adapt_nn::accuracy(&test_logits, &btest.y, 0.5);

    TrainedModels {
        background,
        background_no_polar,
        thresholds,
        d_eta,
        d_eta_no_polar,
        background_linear_first,
        quantized_background,
        val_losses: (breport.best_val_loss, dreport.best_val_loss),
    }
}

impl TrainedModels {
    /// Save as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("model serialization");
        std::fs::write(path, json)
    }

    /// Load from JSON.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Load the cached models at `path`, or train (and cache) them.
    pub fn load_or_train(path: &Path, config: &TrainingCampaignConfig, seed: u64) -> TrainedModels {
        if let Ok(models) = Self::load(path) {
            return models;
        }
        let models = train_models(config, seed);
        // caching is best-effort: a read-only target dir is not fatal
        let _ = models.save(path);
        models
    }
}

/// Diagnostic used by tests and EXPERIMENTS.md: balanced accuracy of the
/// background net on freshly simulated rings at a given polar angle.
pub fn background_accuracy_at(models: &TrainedModels, polar_deg: f64, seed: u64) -> f64 {
    let sim = BurstSimulation::with_defaults(GrbConfig::new(2.0, polar_deg));
    let data = sim.simulate(seed);
    let rings = Reconstructor::default().reconstruct_all(&data.events);
    if rings.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for r in &rings {
        let x = r.features.to_model_input(polar_deg);
        let p = adapt_nn::sigmoid(models.background.predict_one(&x));
        let pred_bkg = models.thresholds.is_background(p, polar_deg);
        if pred_bkg == r.is_background_truth() {
            correct += 1;
        }
    }
    correct as f64 / rings.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_math::angles::polar_angle_deg;

    #[test]
    fn campaign_produces_balanced_rings() {
        let rings = generate_training_rings(&TrainingCampaignConfig::fast(), 1);
        assert!(rings.len() > 300, "{} rings", rings.len());
        let bkg = rings
            .iter()
            .filter(|r| r.ring.is_background_truth())
            .count();
        let frac = bkg as f64 / rings.len() as f64;
        assert!(frac > 0.2 && frac < 0.8, "background fraction {frac}");
    }

    #[test]
    fn datasets_have_consistent_shapes() {
        let rings = generate_training_rings(&TrainingCampaignConfig::fast(), 2);
        let bd = background_dataset(&rings, true);
        assert_eq!(bd.dim(), 13);
        assert_eq!(bd.len(), rings.len());
        let bd12 = background_dataset(&rings, false);
        assert_eq!(bd12.dim(), 12);
        let dd = d_eta_dataset(&rings, 1e-4, true);
        assert_eq!(dd.dim(), 13);
        assert!(dd.len() < rings.len(), "dEta set excludes background");
        assert!(dd.y.iter().all(|v| v.is_finite()));
        assert_eq!(d_eta_dataset(&rings, 1e-4, false).dim(), 12);
    }

    #[test]
    fn trained_background_beats_chance() {
        let models = train_models(&TrainingCampaignConfig::fast(), 3);
        // evaluate on a fresh burst
        let acc = background_accuracy_at(&models, 0.0, 99);
        assert!(acc > 0.6, "background accuracy {acc}");
    }

    #[test]
    fn save_load_round_trip() {
        let models = train_models(&TrainingCampaignConfig::fast(), 4);
        let dir = std::env::temp_dir().join("adapt_models_test.json");
        models.save(&dir).unwrap();
        let loaded = TrainedModels::load(&dir).unwrap();
        // same predictions
        let x = vec![0.5; 13];
        assert_eq!(
            models.background.predict_one(&x),
            loaded.background.predict_one(&x)
        );
        assert_eq!(
            models.quantized_background.forward_one(&x),
            loaded.quantized_background.forward_one(&x)
        );
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn polar_angles_match_paper_grid() {
        let cfg = TrainingCampaignConfig::default();
        assert_eq!(cfg.polar_angles_deg.len(), 9);
        assert_eq!(cfg.polar_angles_deg[0], 0.0);
        assert_eq!(cfg.polar_angles_deg[8], 80.0);
    }

    #[test]
    fn exposure_polar_matches_truth_polar_for_grb() {
        let rings = generate_training_rings(&TrainingCampaignConfig::fast(), 5);
        for lr in rings.iter().filter(|r| !r.ring.is_background_truth()) {
            let truth = lr.ring.truth.unwrap();
            let true_polar = polar_angle_deg(truth.source_dir);
            assert!(
                (true_polar - lr.exposure_polar_deg).abs() < 1e-6,
                "grb ring polar {true_polar} vs exposure {}",
                lr.exposure_polar_deg
            );
        }
    }
}
