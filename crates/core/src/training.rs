//! Training-data campaign and model training (paper §III, "Model
//! Training").
//!
//! The paper simulates 270 M GRB photons across nine polar angles (0°–80°
//! in 10° steps) plus scaled background exposure, keeps the ~1 M rings that
//! pass pre-localization filters, and trains on an 80/20/20 split. This
//! module reproduces that procedure at a configurable (laptop-scale)
//! photon budget: simulate per-angle bursts, reconstruct rings, label them
//! from truth, train the two networks with the paper's hyperparameters,
//! fit the per-polar-bin thresholds, and quantize the background network.
//!
//! Trained models are cached on disk as JSON so the experiment binaries
//! don't retrain for every figure.

use adapt_nn::mlp::BlockOrder;
use adapt_nn::{
    models, qat_finetune, three_way_split, Dataset, Matrix, Mlp, QuantizedMlp, ThresholdTable,
    TrainConfig, TrainReport,
};
use adapt_recon::{ComptonRing, Reconstructor};
use adapt_sim::{BackgroundConfig, BurstSimulation, DetectorConfig, GrbConfig, PerturbationConfig};
use adapt_telemetry::{fnv1a_hex, DriftReference, ManifestDraft, RunTracker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Schema version of the serialized [`TrainedModels`] artifact. Version
/// 2 added the `schema` field itself, run provenance, and the drift
/// reference; version-1 caches (no `schema` field) are rejected as a
/// schema mismatch and retrained.
pub const MODELS_SCHEMA: u32 = 2;

/// Canonical order of the 13-wide staged model input
/// (`RingFeatures::to_model_input`). Hashed into manifests and model
/// artifacts so a feature-order change is detectable as provenance
/// drift rather than silent mis-prediction.
pub const FEATURE_SCHEMA: &str = "total_energy,hit1_x,hit1_y,hit1_z,hit1_e,\
     hit2_x,hit2_y,hit2_z,hit2_e,sigma_total_energy,sigma_e1,sigma_e2,polar_angle_deg";

/// FNV-1a hash of [`FEATURE_SCHEMA`].
pub fn feature_schema_hash() -> String {
    fnv1a_hex(FEATURE_SCHEMA.as_bytes())
}

/// Configuration of the training campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingCampaignConfig {
    /// GRB fluence simulated at each polar angle (MeV/cm²). Larger values
    /// mean more GRB rings per angle.
    pub grb_fluence_per_angle: f64,
    /// Background particle fluence for the training exposure (boosted far
    /// above the flight-time default so the label classes stay balanced,
    /// as the paper does by simulating 1350× background batches).
    pub background_fluence: f64,
    /// The nine source polar angles (degrees).
    pub polar_angles_deg: Vec<f64>,
    /// Maximum training epochs (paper: 120; scale down for quick runs).
    pub max_epochs: usize,
    /// Floor for the dEta regression target |η error| before the log.
    pub eta_error_floor: f64,
}

impl Default for TrainingCampaignConfig {
    fn default() -> Self {
        TrainingCampaignConfig {
            grb_fluence_per_angle: 25.0,
            background_fluence: 250.0,
            polar_angles_deg: (0..9).map(|i| i as f64 * 10.0).collect(),
            max_epochs: 60,
            eta_error_floor: 1e-4,
        }
    }
}

impl TrainingCampaignConfig {
    /// A fast configuration for tests: fewer photons, fewer epochs.
    pub fn fast() -> Self {
        TrainingCampaignConfig {
            grb_fluence_per_angle: 2.0,
            background_fluence: 20.0,
            polar_angles_deg: vec![0.0, 30.0, 60.0],
            max_epochs: 8,
            eta_error_floor: 1e-4,
        }
    }
}

/// A labeled ring with its generation-time polar angle (the angle fed as
/// the networks' thirteenth input during training).
#[derive(Debug, Clone)]
pub struct LabeledRing {
    /// The reconstructed ring with truth attached.
    pub ring: ComptonRing,
    /// The true source polar angle of the *GRB* of that exposure —
    /// background rings get the same exposure angle, mirroring flight
    /// conditions where the loop feeds the current ŝ estimate to every
    /// ring of the burst.
    pub exposure_polar_deg: f64,
}

/// Simulate the training campaign and reconstruct all rings.
pub fn generate_training_rings(config: &TrainingCampaignConfig, seed: u64) -> Vec<LabeledRing> {
    let recon = Reconstructor::default();
    config
        .polar_angles_deg
        .par_iter()
        .enumerate()
        .flat_map(|(i, &angle)| {
            let grb = GrbConfig::new(config.grb_fluence_per_angle, angle);
            let background = BackgroundConfig {
                particle_fluence: config.background_fluence,
                ..BackgroundConfig::default()
            };
            let sim = BurstSimulation::new(
                DetectorConfig::default(),
                grb,
                background,
                PerturbationConfig::default(),
            );
            let data = sim.simulate(seed.wrapping_add(i as u64 * 7919));
            let rings = recon.reconstruct_all(&data.events);
            rings
                .into_iter()
                .map(|ring| LabeledRing {
                    ring,
                    exposure_polar_deg: angle,
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Build the background-classification dataset (label 1 = background).
/// When `with_polar` is false the 12-feature variant is produced (Fig. 7
/// ablation).
pub fn background_dataset(rings: &[LabeledRing], with_polar: bool) -> Dataset {
    let dim = if with_polar { 13 } else { 12 };
    let mut xs = Vec::with_capacity(rings.len() * dim);
    let mut ys = Vec::with_capacity(rings.len());
    for lr in rings {
        if with_polar {
            xs.extend_from_slice(&lr.ring.features.to_model_input(lr.exposure_polar_deg));
        } else {
            xs.extend_from_slice(&lr.ring.features.to_static_array());
        }
        ys.push(if lr.ring.is_background_truth() {
            1.0
        } else {
            0.0
        });
    }
    Dataset::new(Matrix::from_vec(rings.len(), dim, xs), ys)
}

/// Build the dEta regression dataset: GRB rings only (the paper removes
/// background rings from the dEta training set); target is
/// `ln(max(|η error|, floor))`. `with_polar` selects the 13- or 12-wide
/// input variant.
pub fn d_eta_dataset(rings: &[LabeledRing], floor: f64, with_polar: bool) -> Dataset {
    let dim = if with_polar { 13 } else { 12 };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut n = 0usize;
    for lr in rings {
        if lr.ring.is_background_truth() {
            continue;
        }
        let Some(truth) = lr.ring.truth else { continue };
        let err = truth.true_eta_error(lr.ring.axis, lr.ring.eta).max(floor);
        if with_polar {
            xs.extend_from_slice(&lr.ring.features.to_model_input(lr.exposure_polar_deg));
        } else {
            xs.extend_from_slice(&lr.ring.features.to_static_array());
        }
        ys.push(err.ln());
        n += 1;
    }
    Dataset::new(Matrix::from_vec(n, dim, xs), ys)
}

/// Where a [`TrainedModels`] artifact came from: the tracked run that
/// produced it, by id and hash. Embedded in the saved JSON so a cached
/// model is always traceable back to its run directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelProvenance {
    /// Id of the run (`artifacts/runs/<run_id>/`).
    pub run_id: String,
    /// FNV-1a hash of the run's serialized manifest.
    pub manifest_hash: String,
    /// FNV-1a hash of [`FEATURE_SCHEMA`] at training time.
    pub feature_schema_hash: String,
    /// FNV-1a checksum over the serialized network weights.
    pub weight_checksum: String,
    /// Data-campaign seed.
    pub data_seed: u64,
}

/// Why a cached [`TrainedModels`] artifact was rejected.
#[derive(Debug)]
pub enum ModelLoadError {
    /// No cache exists at the path.
    NotFound(std::path::PathBuf),
    /// The file exists but could not be read.
    Io(std::io::Error),
    /// The file is not valid JSON or is missing required fields.
    Corrupt(String),
    /// The artifact was written by a different schema version.
    SchemaMismatch {
        /// Version found in the file (0 = legacy pre-versioned artifact).
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
}

impl std::fmt::Display for ModelLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelLoadError::NotFound(p) => write!(f, "no cached models at {}", p.display()),
            ModelLoadError::Io(e) => write!(f, "I/O error reading cached models: {e}"),
            ModelLoadError::Corrupt(e) => write!(f, "cached models are corrupt: {e}"),
            ModelLoadError::SchemaMismatch { found, expected } => write!(
                f,
                "cached models have schema version {found} but this build expects {expected}"
            ),
        }
    }
}

impl std::error::Error for ModelLoadError {}

/// Everything the ML pipeline needs at inference time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModels {
    /// Artifact schema version ([`MODELS_SCHEMA`]).
    pub schema: u32,
    /// Provenance of the run that trained these weights (`None` for
    /// untracked runs).
    pub provenance: Option<ModelProvenance>,
    /// Reference feature statistics of the 13-wide background training
    /// set — the training-time half of the drift monitor.
    pub drift_reference: DriftReference,
    /// Background classifier with the polar input (13-wide).
    pub background: Mlp,
    /// Background classifier without the polar input (12-wide ablation).
    pub background_no_polar: Mlp,
    /// Per-polar-bin thresholds for the 13-wide classifier.
    pub thresholds: ThresholdTable,
    /// dEta regressor (outputs ln dη).
    pub d_eta: Mlp,
    /// dEta regressor without the polar input (Fig. 7 ablation arm).
    pub d_eta_no_polar: Mlp,
    /// The float (FP32-role) parent of the quantized classifier: the
    /// LinearFirst model after QAT fine-tuning. Fig.-11-style comparisons
    /// of "INT8 vs FP32" are between `quantized_background` and this.
    pub background_linear_first: Mlp,
    /// INT8-quantized background classifier (QAT fine-tuned, fused).
    pub quantized_background: QuantizedMlp,
    /// Validation losses for the record: (background, dEta).
    pub val_losses: (f64, f64),
}

/// Train all models from a ring campaign. Deterministic given `seed`.
pub fn train_models(config: &TrainingCampaignConfig, seed: u64) -> TrainedModels {
    train_models_tracked(config, seed, None)
}

/// Train one model, streaming its epochs into the tracker when present.
fn train_one(
    name: &str,
    tracker: Option<&RunTracker>,
    model: &mut Mlp,
    train_set: &Dataset,
    val_set: &Dataset,
    cfg: &TrainConfig,
    rng: &mut ChaCha8Rng,
) -> TrainReport {
    match tracker {
        Some(t) => {
            t.begin_model(name);
            let mut hook = t;
            adapt_nn::train_with_hook(model, train_set, val_set, cfg, rng, &mut hook)
        }
        None => adapt_nn::train(model, train_set, val_set, cfg, rng),
    }
}

/// [`train_models`] with run tracking: every model's epochs stream into
/// the tracker (watchdogs included — an aborted model keeps its best
/// pre-abort checkpoint and the abort reason lands in the manifest), and
/// the finished artifact embeds [`ModelProvenance`] pointing back at the
/// run. The same RNG schedule is used with and without a tracker, so a
/// tracked run reproduces the untracked weights bit-for-bit.
pub fn train_models_tracked(
    config: &TrainingCampaignConfig,
    seed: u64,
    tracker: Option<&RunTracker>,
) -> TrainedModels {
    let rings = generate_training_rings(config, seed);
    assert!(
        rings.len() > 200,
        "training campaign produced only {} rings — raise the fluence",
        rings.len()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA11CE);

    // ----- background network (with polar) -----
    let bkg_data = background_dataset(&rings, true);
    // the drift reference is fitted on the full 13-wide staged dataset,
    // matching what MlLocalizer stages at inference time
    let drift_reference = DriftReference::fit(bkg_data.x.as_slice(), bkg_data.len(), 13);
    let (btrain, bval, btest) = three_way_split(&bkg_data, &mut rng);
    let mut background = models::background_network(13, BlockOrder::BatchNormFirst, &mut rng);
    let bcfg = TrainConfig {
        max_epochs: config.max_epochs,
        ..TrainConfig::background_paper()
    };
    // scaled batch: the paper's 4096 exceeds small campaign sizes
    let bcfg = TrainConfig {
        batch_size: bcfg.batch_size.min((btrain.len() / 4).max(32)),
        learning_rate: 3e-3,
        ..bcfg
    };
    let breport = train_one(
        "background",
        tracker,
        &mut background,
        &btrain,
        &bval,
        &bcfg,
        &mut rng,
    );

    // ----- thresholds on the training split -----
    let logits = background.predict(&btrain.x);
    let probs: Vec<f64> = (0..btrain.len())
        .map(|i| adapt_nn::sigmoid(logits.get(i, 0)))
        .collect();
    let polar: Vec<f64> = (0..btrain.len()).map(|i| btrain.x.get(i, 12)).collect();
    let thresholds = ThresholdTable::fit(&probs, &btrain.y, &polar);

    // ----- background network without polar (Fig. 7 ablation) -----
    let bkg_np_data = background_dataset(&rings, false);
    let (nptrain, npval, _) = three_way_split(&bkg_np_data, &mut rng);
    let mut background_no_polar =
        models::background_network(12, BlockOrder::BatchNormFirst, &mut rng);
    train_one(
        "background_no_polar",
        tracker,
        &mut background_no_polar,
        &nptrain,
        &npval,
        &bcfg,
        &mut rng,
    );

    // ----- dEta network -----
    let deta_data = d_eta_dataset(&rings, config.eta_error_floor, true);
    let (dtrain, dval, _) = three_way_split(&deta_data, &mut rng);
    let mut d_eta = models::d_eta_network(13, BlockOrder::BatchNormFirst, &mut rng);
    let dcfg = TrainConfig {
        max_epochs: config.max_epochs,
        ..TrainConfig::d_eta_paper()
    };
    let dreport = train_one(
        "d_eta", tracker, &mut d_eta, &dtrain, &dval, &dcfg, &mut rng,
    );

    // ----- dEta network without polar (Fig. 7 ablation arm) -----
    let deta_np_data = d_eta_dataset(&rings, config.eta_error_floor, false);
    let (dnp_train, dnp_val, _) = three_way_split(&deta_np_data, &mut rng);
    let mut d_eta_no_polar = models::d_eta_network(12, BlockOrder::BatchNormFirst, &mut rng);
    train_one(
        "d_eta_no_polar",
        tracker,
        &mut d_eta_no_polar,
        &dnp_train,
        &dnp_val,
        &dcfg,
        &mut rng,
    );

    // ----- quantized background network -----
    // retrain in the fusion-friendly LinearFirst order (paper §V retrains
    // with the swapped block order), then QAT fine-tune and quantize
    let mut bkg_lf = models::background_network(13, BlockOrder::LinearFirst, &mut rng);
    // prepend a normalizing input BatchNorm (folded forward into the first
    // Linear at fusion time), keeping the raw 13-feature interface while
    // restoring the trainability the BatchNormFirst order enjoys
    bkg_lf.layers_mut().insert(
        0,
        adapt_nn::Layer::BatchNorm(adapt_nn::BatchNorm1d::new(13)),
    );
    train_one(
        "background_linear_first",
        tracker,
        &mut bkg_lf,
        &btrain,
        &bval,
        &bcfg,
        &mut rng,
    );
    let qat_cfg = TrainConfig {
        learning_rate: bcfg.learning_rate * 0.1,
        ..bcfg.clone()
    };
    qat_finetune(&mut bkg_lf, &btrain, &qat_cfg, 3, &mut rng);
    let quantized_background = QuantizedMlp::quantize(&bkg_lf, &btrain.x);
    let background_linear_first = bkg_lf;

    // sanity: held-out accuracy recorded for the experiment log
    let test_logits = background.predict(&btest.x);
    let _test_acc = adapt_nn::accuracy(&test_logits, &btest.y, 0.5);

    // checksum over every trained network's serialized weights
    let mut weight_bytes = String::new();
    weight_bytes.push_str(&background.to_json());
    weight_bytes.push_str(&background_no_polar.to_json());
    weight_bytes.push_str(&d_eta.to_json());
    weight_bytes.push_str(&d_eta_no_polar.to_json());
    weight_bytes.push_str(&background_linear_first.to_json());
    let weight_checksum = fnv1a_hex(weight_bytes.as_bytes());

    let provenance = tracker.map(|t| {
        let draft = ManifestDraft {
            config: serde_json::to_string(config).expect("campaign config serialization"),
            data_seed: seed,
            feature_schema_hash: feature_schema_hash(),
            weight_checksum: weight_checksum.clone(),
        };
        let (manifest, manifest_hash) = t.finish(draft).expect("manifest write");
        ModelProvenance {
            run_id: manifest.run_id,
            manifest_hash,
            feature_schema_hash: feature_schema_hash(),
            weight_checksum: weight_checksum.clone(),
            data_seed: seed,
        }
    });

    TrainedModels {
        schema: MODELS_SCHEMA,
        provenance,
        drift_reference,
        background,
        background_no_polar,
        thresholds,
        d_eta,
        d_eta_no_polar,
        background_linear_first,
        quantized_background,
        val_losses: (breport.best_val_loss, dreport.best_val_loss),
    }
}

impl TrainedModels {
    /// Save as JSON (atomic: temp file + rename, so a crash mid-save
    /// never leaves a torn cache).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("model serialization");
        adapt_telemetry::write_atomic(path, &json)
    }

    /// Load from JSON, classifying every failure: missing file, I/O
    /// error, schema mismatch (including legacy pre-versioned caches),
    /// or corrupt contents.
    pub fn load(path: &Path) -> Result<Self, ModelLoadError> {
        let json = match std::fs::read_to_string(path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ModelLoadError::NotFound(path.to_path_buf()))
            }
            Err(e) => return Err(ModelLoadError::Io(e)),
        };
        // structural parse first, so schema mismatches are reported as
        // such rather than as a missing-field deserialization error
        let value: serde::Value =
            serde_json::from_str(&json).map_err(|e| ModelLoadError::Corrupt(e.to_string()))?;
        let found = match value.get("schema") {
            Some(serde::Value::UInt(n)) => *n as u32,
            Some(serde::Value::Int(n)) if *n >= 0 => *n as u32,
            // pre-PR-4 caches carry no schema field at all
            _ => 0,
        };
        if found != MODELS_SCHEMA {
            return Err(ModelLoadError::SchemaMismatch {
                found,
                expected: MODELS_SCHEMA,
            });
        }
        serde_json::from_str(&json).map_err(|e| ModelLoadError::Corrupt(e.to_string()))
    }

    /// Load the cached models at `path`, or train (and cache) them. A
    /// rejected cache logs *why* it was rejected (schema mismatch vs I/O
    /// vs corrupt) before retraining; a loaded cache reports which
    /// tracked run it came from.
    pub fn load_or_train(path: &Path, config: &TrainingCampaignConfig, seed: u64) -> TrainedModels {
        match Self::load(path) {
            Ok(models) => {
                match &models.provenance {
                    Some(p) => eprintln!(
                        "loaded cached models from {} (run {}, seed {:#x})",
                        path.display(),
                        p.run_id,
                        p.data_seed
                    ),
                    None => eprintln!(
                        "loaded cached models from {} (untracked run)",
                        path.display()
                    ),
                }
                return models;
            }
            Err(ModelLoadError::NotFound(_)) => {
                eprintln!("no cached models at {}; training", path.display());
            }
            Err(e) => {
                eprintln!(
                    "rejecting cached models at {}: {e}; retraining",
                    path.display()
                );
            }
        }
        let models = train_models(config, seed);
        // caching is best-effort: a read-only target dir is not fatal
        let _ = models.save(path);
        models
    }
}

/// Diagnostic used by tests and EXPERIMENTS.md: balanced accuracy of the
/// background net on freshly simulated rings at a given polar angle.
pub fn background_accuracy_at(models: &TrainedModels, polar_deg: f64, seed: u64) -> f64 {
    let sim = BurstSimulation::with_defaults(GrbConfig::new(2.0, polar_deg));
    let data = sim.simulate(seed);
    let rings = Reconstructor::default().reconstruct_all(&data.events);
    if rings.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for r in &rings {
        let x = r.features.to_model_input(polar_deg);
        let p = adapt_nn::sigmoid(models.background.predict_one(&x));
        let pred_bkg = models.thresholds.is_background(p, polar_deg);
        if pred_bkg == r.is_background_truth() {
            correct += 1;
        }
    }
    correct as f64 / rings.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_math::angles::polar_angle_deg;

    #[test]
    fn campaign_produces_balanced_rings() {
        let rings = generate_training_rings(&TrainingCampaignConfig::fast(), 1);
        assert!(rings.len() > 300, "{} rings", rings.len());
        let bkg = rings
            .iter()
            .filter(|r| r.ring.is_background_truth())
            .count();
        let frac = bkg as f64 / rings.len() as f64;
        assert!(frac > 0.2 && frac < 0.8, "background fraction {frac}");
    }

    #[test]
    fn datasets_have_consistent_shapes() {
        let rings = generate_training_rings(&TrainingCampaignConfig::fast(), 2);
        let bd = background_dataset(&rings, true);
        assert_eq!(bd.dim(), 13);
        assert_eq!(bd.len(), rings.len());
        let bd12 = background_dataset(&rings, false);
        assert_eq!(bd12.dim(), 12);
        let dd = d_eta_dataset(&rings, 1e-4, true);
        assert_eq!(dd.dim(), 13);
        assert!(dd.len() < rings.len(), "dEta set excludes background");
        assert!(dd.y.iter().all(|v| v.is_finite()));
        assert_eq!(d_eta_dataset(&rings, 1e-4, false).dim(), 12);
    }

    #[test]
    fn trained_background_beats_chance() {
        let models = train_models(&TrainingCampaignConfig::fast(), 3);
        // evaluate on a fresh burst
        let acc = background_accuracy_at(&models, 0.0, 99);
        assert!(acc > 0.6, "background accuracy {acc}");
    }

    #[test]
    fn save_load_round_trip() {
        let models = train_models(&TrainingCampaignConfig::fast(), 4);
        let dir = std::env::temp_dir().join("adapt_models_test.json");
        models.save(&dir).unwrap();
        let loaded = TrainedModels::load(&dir).unwrap();
        // same predictions
        let x = vec![0.5; 13];
        assert_eq!(
            models.background.predict_one(&x),
            loaded.background.predict_one(&x)
        );
        assert_eq!(
            models.quantized_background.forward_one(&x),
            loaded.quantized_background.forward_one(&x)
        );
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn load_classifies_rejection_reasons() {
        let dir = std::env::temp_dir().join(format!("adapt_load_cls_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // missing file
        match TrainedModels::load(&dir.join("absent.json")) {
            Err(ModelLoadError::NotFound(_)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
        // garbage contents
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json at all").unwrap();
        match TrainedModels::load(&garbage) {
            Err(ModelLoadError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // legacy cache without a schema field
        let legacy = dir.join("legacy.json");
        std::fs::write(&legacy, "{\"background\":{}}").unwrap();
        match TrainedModels::load(&legacy) {
            Err(ModelLoadError::SchemaMismatch { found: 0, expected }) => {
                assert_eq!(expected, MODELS_SCHEMA)
            }
            other => panic!("expected legacy SchemaMismatch, got {other:?}"),
        }
        // future schema
        let future = dir.join("future.json");
        std::fs::write(&future, "{\"schema\":99}").unwrap();
        match TrainedModels::load(&future) {
            Err(ModelLoadError::SchemaMismatch { found: 99, .. }) => {}
            other => panic!("expected future SchemaMismatch, got {other:?}"),
        }
        // right schema, truncated body
        let truncated = dir.join("truncated.json");
        std::fs::write(&truncated, format!("{{\"schema\":{MODELS_SCHEMA}}}")).unwrap();
        match TrainedModels::load(&truncated) {
            Err(ModelLoadError::Corrupt(_)) => {}
            other => panic!("expected Corrupt on missing fields, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracked_training_produces_provenance_and_valid_run() {
        let root = std::env::temp_dir().join(format!("adapt_runs_core_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let tracker =
            RunTracker::create_named(&root, "train", 6, "train-0006-test").expect("run dir");
        let models = train_models_tracked(&TrainingCampaignConfig::fast(), 6, Some(&tracker));

        let p = models.provenance.as_ref().expect("tracked run provenance");
        assert_eq!(p.run_id, "train-0006-test");
        assert_eq!(p.data_seed, 6);
        assert_eq!(p.feature_schema_hash, feature_schema_hash());

        // the epoch stream validates and covers all five trained networks
        let text = std::fs::read_to_string(tracker.dir().join("epochs.ndjson")).unwrap();
        let summary = adapt_telemetry::validate_run(&text).expect("run stream validates");
        assert_eq!(summary.models.len(), 5, "models: {:?}", summary.models);
        assert!(summary.n_epochs >= 5);

        // the manifest round-trips and matches the embedded provenance
        let manifest = adapt_telemetry::load_manifest(tracker.dir()).unwrap();
        assert_eq!(manifest.run_id, p.run_id);
        assert_eq!(manifest.weight_checksum, p.weight_checksum);
        assert_eq!(manifest.feature_schema_hash, p.feature_schema_hash);
        assert!(manifest.epochs >= 5);

        // drift reference covers the 13-wide staged input
        assert_eq!(models.drift_reference.n_features(), 13);
        assert!(models.drift_reference.n_rows > 200);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn polar_angles_match_paper_grid() {
        let cfg = TrainingCampaignConfig::default();
        assert_eq!(cfg.polar_angles_deg.len(), 9);
        assert_eq!(cfg.polar_angles_deg[0], 0.0);
        assert_eq!(cfg.polar_angles_deg[8], 80.0);
    }

    #[test]
    fn exposure_polar_matches_truth_polar_for_grb() {
        let rings = generate_training_rings(&TrainingCampaignConfig::fast(), 5);
        for lr in rings.iter().filter(|r| !r.ring.is_background_truth()) {
            let truth = lr.ring.truth.unwrap();
            let true_polar = polar_angle_deg(truth.source_dir);
            assert!(
                (true_polar - lr.exposure_polar_deg).abs() < 1e-6,
                "grb ring polar {true_polar} vs exposure {}",
                lr.exposure_polar_deg
            );
        }
    }
}
