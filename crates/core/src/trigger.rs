//! The burst trigger: detecting that a GRB happened at all.
//!
//! APT/ADAPT "promptly detect energetic transient events … and rapidly
//! communicate these events" (paper §I). Localization only runs once a
//! burst trigger fires. This module implements the standard rate-trigger:
//! slide windows of several widths over the event arrival times and fire
//! when some window's count is significantly above the background-only
//! Poisson expectation.

use adapt_sim::Event;
use serde::{Deserialize, Serialize};

/// Trigger configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriggerConfig {
    /// Window widths to test (s). Multiple scales catch both spiky and
    /// smooth light curves.
    pub window_widths_s: Vec<f64>,
    /// Step between window starts, as a fraction of the width.
    pub step_fraction: f64,
    /// Significance threshold in Gaussian sigmas.
    pub threshold_sigma: f64,
}

impl Default for TriggerConfig {
    fn default() -> Self {
        TriggerConfig {
            window_widths_s: vec![0.064, 0.256, 1.024],
            step_fraction: 0.25,
            threshold_sigma: 5.0,
        }
    }
}

/// The trigger's verdict on one exposure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriggerResult {
    /// Whether any window crossed the threshold.
    pub detected: bool,
    /// The largest significance observed (sigmas).
    pub max_significance: f64,
    /// Start time of the most significant window (s).
    pub trigger_time_s: f64,
    /// Width of the most significant window (s).
    pub trigger_width_s: f64,
}

/// Scan `events` (arrival times within `[0, duration_s)`) against a known
/// background-only rate (events per second).
pub fn scan(
    events: &[Event],
    duration_s: f64,
    background_rate_hz: f64,
    config: &TriggerConfig,
) -> TriggerResult {
    assert!(duration_s > 0.0 && background_rate_hz >= 0.0);
    let mut times: Vec<f64> = events.iter().map(|e| e.arrival_time).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("non-finite arrival time"));

    let mut best = TriggerResult {
        detected: false,
        max_significance: 0.0,
        trigger_time_s: 0.0,
        trigger_width_s: 0.0,
    };
    for &width in &config.window_widths_s {
        let width = width.min(duration_s);
        let step = (width * config.step_fraction).max(1e-6);
        let expected = background_rate_hz * width;
        if expected <= 0.0 {
            continue;
        }
        let mut start = 0.0;
        while start + width <= duration_s + 1e-12 {
            let lo = times.partition_point(|&t| t < start);
            let hi = times.partition_point(|&t| t < start + width);
            let n = (hi - lo) as f64;
            // Poisson significance with a Gaussian approximation; the
            // sqrt floor keeps tiny windows from dividing by ~0
            let sig = (n - expected) / expected.sqrt().max(1e-6);
            if sig > best.max_significance {
                best.max_significance = sig;
                best.trigger_time_s = start;
                best.trigger_width_s = width;
            }
            start += step;
        }
    }
    best.detected = best.max_significance >= config.threshold_sigma;
    best
}

/// Estimate the background-only event rate (events/s) from a source-free
/// calibration exposure — in flight this comes from rolling averages of
/// quiet time.
pub fn calibrate_background_rate(events: &[Event], duration_s: f64) -> f64 {
    assert!(duration_s > 0.0);
    events.len() as f64 / duration_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_sim::{
        BackgroundConfig, BurstSimulation, DetectorConfig, GrbConfig, PerturbationConfig,
    };

    fn background_only_rate(seed: u64) -> f64 {
        // a zero-fluence "burst": only background events
        let sim = BurstSimulation::with_defaults(GrbConfig::new(1e-6, 0.0));
        let data = sim.simulate(seed);
        calibrate_background_rate(&data.events, 1.0)
    }

    #[test]
    fn bright_burst_triggers() {
        let rate = background_only_rate(1);
        let sim = BurstSimulation::with_defaults(GrbConfig::new(1.0, 0.0));
        let data = sim.simulate(2);
        let result = scan(&data.events, 1.0, rate, &TriggerConfig::default());
        assert!(
            result.detected,
            "1 MeV/cm^2 burst must trigger (max sig {:.1})",
            result.max_significance
        );
        // the FRED pulse starts at 0.1 s: the trigger window should land
        // near the pulse
        assert!(
            result.trigger_time_s < 0.6,
            "trigger at {} s",
            result.trigger_time_s
        );
    }

    #[test]
    fn background_only_does_not_trigger() {
        let rate = background_only_rate(3);
        let sim = BurstSimulation::with_defaults(GrbConfig::new(1e-6, 0.0));
        let mut false_alarms = 0;
        for seed in 10..20 {
            let data = sim.simulate(seed);
            let result = scan(&data.events, 1.0, rate, &TriggerConfig::default());
            if result.detected {
                false_alarms += 1;
            }
        }
        assert!(
            false_alarms <= 1,
            "{false_alarms}/10 false alarms at 5 sigma"
        );
    }

    #[test]
    fn detection_efficiency_grows_with_fluence() {
        let rate = background_only_rate(4);
        let efficiency = |fluence: f64| {
            let sim = BurstSimulation::with_defaults(GrbConfig::new(fluence, 0.0));
            let mut hits = 0;
            for seed in 0..8 {
                let data = sim.simulate(100 + seed);
                if scan(&data.events, 1.0, rate, &TriggerConfig::default()).detected {
                    hits += 1;
                }
            }
            hits as f64 / 8.0
        };
        let dim = efficiency(0.02);
        let bright = efficiency(1.0);
        assert!(bright > dim, "bright {bright} !> dim {dim}");
        assert!((bright - 1.0).abs() < 1e-9, "bright bursts always detected");
    }

    #[test]
    fn empty_event_list() {
        let result = scan(&[], 1.0, 100.0, &TriggerConfig::default());
        assert!(!result.detected);
        assert!(result.max_significance <= 0.0);
    }

    #[test]
    fn zero_background_rate_is_safe() {
        let sim = BurstSimulation::new(
            DetectorConfig::default(),
            GrbConfig::new(0.5, 0.0),
            BackgroundConfig {
                particle_fluence: 0.0,
                ..BackgroundConfig::default()
            },
            PerturbationConfig::default(),
        );
        let data = sim.simulate(5);
        // rate 0: every window is skipped, no panic, no detection
        let result = scan(&data.events, 1.0, 0.0, &TriggerConfig::default());
        assert!(!result.detected);
    }
}
