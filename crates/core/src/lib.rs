//! `adapt-core`: the end-to-end ADAPT GRB analysis pipeline with machine
//! learning — the facade crate of the reproduction of *Machine Learning
//! Aboard the ADAPT Gamma-Ray Telescope* (SC 2024).
//!
//! The crate ties the substrates together:
//!
//! * [`training`] — the simulated training campaign (nine polar angles,
//!   boosted background), dataset construction, model training with the
//!   paper's hyperparameters, per-polar-bin thresholds, QAT + INT8
//!   quantization, and on-disk model caching;
//! * [`pipeline`] — simulate → reconstruct → localize under any of the
//!   paper's evaluation arms (baseline, ML, quantized ML, no-polar
//!   ablation, and the two Fig.-4 oracles);
//! * [`experiments`] — containment statistics with meta-trial error bars
//!   and the sweeps behind every accuracy figure;
//! * [`timing`] — the stage-latency tables (paper Tables I/II).
//!
//! ```no_run
//! use adapt_core::prelude::*;
//!
//! let models = train_models(&TrainingCampaignConfig::fast(), 7);
//! let pipeline = Pipeline::new(&models);
//! let outcome = pipeline.run_trial(
//!     PipelineMode::Ml,
//!     &GrbConfig::new(1.0, 0.0),
//!     PerturbationConfig::default(),
//!     42,
//! );
//! println!("localized to within {:.1} degrees", outcome.error_deg);
//! ```

pub mod experiments;
pub mod pipeline;
pub mod report;
pub mod timing;
pub mod training;
pub mod trigger;

pub use experiments::{
    containment_experiment, fluence_sweep, format_rows, noise_sweep, polar_sweep, ContainmentStats,
    FigureRow, TrialSpec,
};
pub use pipeline::{Pipeline, PipelineMode, TrialOutcome, TrialTimings};
pub use report::{ExperimentRecord, SCHEMA_VERSION};
pub use timing::{measure_stages, StageRow, TimingTable};
pub use training::{
    background_dataset, d_eta_dataset, feature_schema_hash, generate_training_rings, train_models,
    train_models_tracked, LabeledRing, ModelLoadError, ModelProvenance, TrainedModels,
    TrainingCampaignConfig, FEATURE_SCHEMA, MODELS_SCHEMA,
};
pub use trigger::{calibrate_background_rate, scan, TriggerConfig, TriggerResult};

/// Everything a downstream user typically needs in one import.
pub mod prelude {
    pub use crate::experiments::{containment_experiment, TrialSpec};
    pub use crate::pipeline::{Pipeline, PipelineMode};
    pub use crate::timing::measure_stages;
    pub use crate::training::{train_models, TrainedModels, TrainingCampaignConfig};
    pub use adapt_sim::{GrbConfig, PerturbationConfig};
}
