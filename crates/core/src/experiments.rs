//! Containment experiments: the machinery behind every accuracy figure.
//!
//! The paper reports *68 % and 95 % containment* — the largest localization
//! error in at most that fraction of trials — with error bars over ten
//! meta-trials (Fig. 4). [`containment_experiment`] reproduces that
//! protocol: `meta_trials × trials_per_meta` independent bursts, each
//! simulated, reconstructed, and localized; containment radii computed per
//! meta-trial; mean ± standard error across meta-trials reported.
//!
//! Trials are independent, so they fan out across cores with rayon; every
//! trial derives its own RNG stream from the experiment seed, making runs
//! bit-reproducible regardless of thread count.

use crate::pipeline::{Pipeline, PipelineMode};
use adapt_math::stats::{containment_radius, RunningStats};
use adapt_sim::{GrbConfig, PerturbationConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How many trials to run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrialSpec {
    /// Trials per meta-trial (paper: 1000; scale via `ADAPT_TRIALS`).
    pub trials_per_meta: usize,
    /// Meta-trials for error bars (paper: 10).
    pub meta_trials: usize,
}

impl Default for TrialSpec {
    fn default() -> Self {
        TrialSpec {
            trials_per_meta: 40,
            meta_trials: 3,
        }
    }
}

impl TrialSpec {
    /// Read overrides from `ADAPT_TRIALS` / `ADAPT_META_TRIALS`
    /// environment variables, falling back to the defaults — the knob for
    /// scaling bench runs up toward the paper's 1000×10.
    pub fn from_env() -> Self {
        let mut spec = TrialSpec::default();
        if let Ok(v) = std::env::var("ADAPT_TRIALS") {
            if let Ok(n) = v.parse() {
                spec.trials_per_meta = n;
            }
        }
        if let Ok(v) = std::env::var("ADAPT_META_TRIALS") {
            if let Ok(n) = v.parse() {
                spec.meta_trials = n;
            }
        }
        spec
    }
}

/// Containment statistics with meta-trial error bars.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContainmentStats {
    /// Mean 68 % containment over meta-trials (degrees).
    pub c68_mean: f64,
    /// Standard error of the 68 % containment.
    pub c68_err: f64,
    /// Mean 95 % containment (degrees).
    pub c95_mean: f64,
    /// Standard error of the 95 % containment.
    pub c95_err: f64,
    /// Fraction of trials that produced any localization.
    pub localized_fraction: f64,
    /// Mean rings entering localization.
    pub mean_rings_in: f64,
    /// Mean rings surviving background rejection.
    pub mean_rings_surviving: f64,
}

/// Run one containment experiment.
pub fn containment_experiment(
    pipeline: &Pipeline<'_>,
    mode: PipelineMode,
    grb: &GrbConfig,
    perturbation: PerturbationConfig,
    spec: TrialSpec,
    seed: u64,
) -> ContainmentStats {
    let mut c68 = RunningStats::new();
    let mut c95 = RunningStats::new();
    let mut localized = 0usize;
    let mut total = 0usize;
    let mut rings_in = RunningStats::new();
    let mut rings_surv = RunningStats::new();
    for meta in 0..spec.meta_trials {
        let outcomes: Vec<_> = (0..spec.trials_per_meta)
            .into_par_iter()
            .map(|t| {
                let trial_seed = seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add((meta * spec.trials_per_meta + t) as u64);
                pipeline.run_trial(mode, grb, perturbation, trial_seed)
            })
            .collect();
        let errors: Vec<f64> = outcomes.iter().map(|o| o.error_deg).collect();
        c68.push(containment_radius(&errors, 0.68).unwrap());
        c95.push(containment_radius(&errors, 0.95).unwrap());
        for o in &outcomes {
            if o.localized {
                localized += 1;
            }
            total += 1;
            rings_in.push(o.rings_in as f64);
            rings_surv.push(o.rings_surviving as f64);
        }
    }
    ContainmentStats {
        c68_mean: c68.mean(),
        c68_err: c68.std_error(),
        c95_mean: c95.mean(),
        c95_err: c95.std_error(),
        localized_fraction: localized as f64 / total.max(1) as f64,
        mean_rings_in: rings_in.mean(),
        mean_rings_surviving: rings_surv.mean(),
    }
}

/// One row of a figure: an x-value (angle, fluence, or noise level), the
/// mode, and its containment stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// The figure's x-axis value.
    pub x: f64,
    /// Which pipeline variant.
    pub mode_label: String,
    /// The measured containment statistics.
    pub stats: ContainmentStats,
}

/// Sweep polar angles for a set of modes (Figs. 7, 8, 11 shape).
pub fn polar_sweep(
    pipeline: &Pipeline<'_>,
    modes: &[PipelineMode],
    fluence: f64,
    angles_deg: &[f64],
    spec: TrialSpec,
    seed: u64,
) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for &angle in angles_deg {
        let grb = GrbConfig::new(fluence, angle);
        for &mode in modes {
            let stats = containment_experiment(
                pipeline,
                mode,
                &grb,
                PerturbationConfig::default(),
                spec,
                seed ^ (angle as u64 * 131),
            );
            rows.push(FigureRow {
                x: angle,
                mode_label: mode.label().to_string(),
                stats,
            });
        }
    }
    rows
}

/// Sweep fluences at normal incidence (Fig. 9 shape).
pub fn fluence_sweep(
    pipeline: &Pipeline<'_>,
    modes: &[PipelineMode],
    fluences: &[f64],
    spec: TrialSpec,
    seed: u64,
) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for &fluence in fluences {
        let grb = GrbConfig::new(fluence, 0.0);
        for &mode in modes {
            let stats = containment_experiment(
                pipeline,
                mode,
                &grb,
                PerturbationConfig::default(),
                spec,
                seed ^ ((fluence * 1000.0) as u64),
            );
            rows.push(FigureRow {
                x: fluence,
                mode_label: mode.label().to_string(),
                stats,
            });
        }
    }
    rows
}

/// Sweep perturbation noise ε (Fig. 10 shape).
pub fn noise_sweep(
    pipeline: &Pipeline<'_>,
    modes: &[PipelineMode],
    fluence: f64,
    epsilons: &[f64],
    spec: TrialSpec,
    seed: u64,
) -> Vec<FigureRow> {
    let grb = GrbConfig::new(fluence, 0.0);
    let mut rows = Vec::new();
    for &eps in epsilons {
        let perturbation = PerturbationConfig {
            epsilon_percent: eps,
            dead_channel_fraction: 0.0,
        };
        for &mode in modes {
            let stats = containment_experiment(
                pipeline,
                mode,
                &grb,
                perturbation,
                spec,
                seed ^ ((eps * 100.0) as u64 + 7),
            );
            rows.push(FigureRow {
                x: eps,
                mode_label: mode.label().to_string(),
                stats,
            });
        }
    }
    rows
}

/// Render rows as an aligned text table (what the experiment binaries
/// print; EXPERIMENTS.md embeds these).
pub fn format_rows(x_label: &str, rows: &[FigureRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10}  {:<28} {:>12} {:>12} {:>10} {:>10}\n",
        x_label, "mode", "68% (deg)", "95% (deg)", "rings", "surviving"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10.2}  {:<28} {:>6.2}±{:<5.2} {:>6.2}±{:<5.2} {:>10.1} {:>10.1}\n",
            r.x,
            r.mode_label,
            r.stats.c68_mean,
            r.stats.c68_err,
            r.stats.c95_mean,
            r.stats.c95_err,
            r.stats.mean_rings_in,
            r.stats.mean_rings_surviving,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_models, TrainingCampaignConfig};
    use std::sync::OnceLock;

    fn models() -> &'static crate::training::TrainedModels {
        static MODELS: OnceLock<crate::training::TrainedModels> = OnceLock::new();
        MODELS.get_or_init(|| train_models(&TrainingCampaignConfig::fast(), 23))
    }

    fn tiny_spec() -> TrialSpec {
        TrialSpec {
            trials_per_meta: 6,
            meta_trials: 2,
        }
    }

    #[test]
    fn containment_runs_and_is_deterministic() {
        let pipeline = Pipeline::new(models());
        let grb = GrbConfig::new(2.0, 0.0);
        let a = containment_experiment(
            &pipeline,
            PipelineMode::Baseline,
            &grb,
            PerturbationConfig::default(),
            tiny_spec(),
            42,
        );
        let b = containment_experiment(
            &pipeline,
            PipelineMode::Baseline,
            &grb,
            PerturbationConfig::default(),
            tiny_spec(),
            42,
        );
        assert_eq!(a.c68_mean, b.c68_mean);
        assert_eq!(a.c95_mean, b.c95_mean);
        assert!(a.c68_mean <= a.c95_mean + 1e-12);
        assert!(a.localized_fraction > 0.5);
    }

    #[test]
    fn polar_sweep_produces_rows_per_angle_and_mode() {
        let pipeline = Pipeline::new(models());
        let rows = polar_sweep(
            &pipeline,
            &[PipelineMode::Baseline, PipelineMode::Ml],
            2.0,
            &[0.0, 40.0],
            tiny_spec(),
            1,
        );
        assert_eq!(rows.len(), 4);
        let table = format_rows("angle", &rows);
        assert!(table.contains("With ML"));
        assert!(table.lines().count() == 5);
    }

    #[test]
    fn env_spec_parsing() {
        std::env::set_var("ADAPT_TRIALS", "17");
        std::env::set_var("ADAPT_META_TRIALS", "2");
        let spec = TrialSpec::from_env();
        assert_eq!(spec.trials_per_meta, 17);
        assert_eq!(spec.meta_trials, 2);
        std::env::remove_var("ADAPT_TRIALS");
        std::env::remove_var("ADAPT_META_TRIALS");
    }
}
